#include "wormnet/cwg/reduction.hpp"

#include <set>

namespace wormnet::cwg {
namespace {

using Edge = std::pair<ChannelId, ChannelId>;

/// State-wise wait-connectivity under a set of removed waiting edges.
///
/// A blocked state (c, d) is OK iff for EVERY channel set the message could
/// simultaneously hold when blocked there — i.e. every simple path in the
/// state graph ending at c — SOME waiting channel w of (c, d) keeps all its
/// (held, w) edges.  Equivalently, (c, d) fails iff there exists a held-path
/// all of whose waiting options have been removed for at least one held
/// channel.  We search for such a "bad" path by walking the state graph
/// backward from c, tracking the set of still-alive waiting options as a
/// bitmask, memoizing on (channel, mask).
class WaitConnectivity {
 public:
  WaitConnectivity(const StateGraph& states, const std::set<Edge>& removed)
      : states_(states), removed_(removed),
        channels_(states.topo().num_channels()) {}

  [[nodiscard]] bool holds() {
    const auto& topo = states_.topo();
    for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
      // Backward adjacency of the state graph for this destination.
      preds_.assign(channels_, {});
      for (ChannelId h = 0; h < channels_; ++h) {
        if (!states_.reachable(h, dest)) continue;
        for (ChannelId next : states_.successors(h, dest)) {
          preds_[next].push_back(h);
        }
      }
      for (ChannelId c = 0; c < channels_; ++c) {
        if (!states_.reachable(c, dest)) continue;
        if (topo.channel(c).dst == dest) continue;
        const auto waits = states_.waiting(c, dest);
        if (waits.empty()) return false;
        if (waits.size() > 63) continue;  // defensive; never in practice
        if (bad_path_exists(c, dest, waits)) return false;
      }
    }
    return true;
  }

 private:
  /// True iff some simple held-path ending at `c` kills every waiting
  /// option in `waits` for destination `dest`.
  bool bad_path_exists(ChannelId c, NodeId dest,
                       std::span<const ChannelId> waits) {
    const std::uint64_t full = (waits.size() == 64)
                                   ? ~0ULL
                                   : ((1ULL << waits.size()) - 1);
    steps_ = 0;
    on_path_.assign(channels_, false);
    return dfs(c, alive_after(full, c, waits), dest, waits);
  }

  [[nodiscard]] std::uint64_t alive_after(std::uint64_t alive, ChannelId held,
                                          std::span<const ChannelId> waits) const {
    for (std::size_t i = 0; i < waits.size(); ++i) {
      if ((alive >> i) & 1) {
        if (removed_.count(Edge{held, waits[i]})) alive &= ~(1ULL << i);
      }
    }
    return alive;
  }

  bool dfs(ChannelId at, std::uint64_t alive, NodeId dest,
           std::span<const ChannelId> waits) {
    if (alive == 0) return true;  // bad path found
    // Conservative cap: if the exhaustive path search becomes too large,
    // report "bad path" so the caller refuses the removal (sound: the final
    // CWG' is never incorrectly declared wait-connected).
    if (++steps_ > kStepBudget) return true;
    // Prune: if no removed edge can kill any still-alive waiting option via
    // a channel not already on the path, alive can never reach zero.
    bool killer_available = false;
    for (const Edge& e : removed_) {
      if (on_path_[e.first]) continue;
      for (std::size_t i = 0; i < waits.size() && !killer_available; ++i) {
        if (((alive >> i) & 1) && waits[i] == e.second) {
          killer_available = true;
        }
      }
      if (killer_available) break;
    }
    if (!killer_available) return false;
    on_path_[at] = true;
    for (ChannelId h : preds_[at]) {
      if (on_path_[h]) continue;  // simple paths only
      if (dfs(h, alive_after(alive, h, waits), dest, waits)) {
        on_path_[at] = false;
        return true;
      }
    }
    on_path_[at] = false;
    return false;
  }

  static constexpr std::size_t kStepBudget = 200000;

  const StateGraph& states_;
  const std::set<Edge>& removed_;
  std::size_t channels_;
  std::vector<std::vector<ChannelId>> preds_;
  std::size_t steps_ = 0;
  std::vector<bool> on_path_;
};

bool wait_connected_under(const StateGraph& states,
                          const std::set<Edge>& removed) {
  WaitConnectivity checker(states, removed);
  return checker.holds();
}

struct Solver {
  const StateGraph& states;
  const std::vector<const ClassifiedCycle*>& cycles;
  std::set<Edge> removed;
  std::vector<Edge> removal_log;
  std::size_t backtracks = 0;
  std::size_t budget;

  [[nodiscard]] static std::vector<Edge> edges_of(
      const ClassifiedCycle& cycle) {
    std::vector<Edge> edges;
    const auto& ch = cycle.channels;
    for (std::size_t i = 0; i < ch.size(); ++i) {
      edges.emplace_back(ch[i], ch[(i + 1) % ch.size()]);
    }
    return edges;
  }

  bool solve(std::size_t idx) {
    if (idx == cycles.size()) return true;
    const auto edges = edges_of(*cycles[idx]);
    // Already broken by an earlier removal?
    for (const Edge& e : edges) {
      if (removed.count(e)) return solve(idx + 1);
    }
    for (const Edge& e : edges) {
      if (budget == 0) return false;
      --budget;
      removed.insert(e);
      if (wait_connected_under(states, removed)) {
        removal_log.push_back(e);
        if (solve(idx + 1)) return true;
        removal_log.pop_back();
      }
      removed.erase(e);
      ++backtracks;
    }
    return false;
  }
};

}  // namespace

ReductionResult reduce_cwg(const StateGraph& states, const Cwg& cwg,
                           const ReductionOptions& options) {
  const CycleSurvey survey =
      survey_cycles(states, cwg, options.max_cycles, options.classify);
  return reduce_cwg(states, cwg, survey, options);
}

ReductionResult reduce_cwg(const StateGraph& states, const Cwg& cwg,
                           const CycleSurvey& survey,
                           const ReductionOptions& options) {
  ReductionResult result;
  if (survey.enumeration_truncated) {
    result.budget_exhausted = true;
    return result;
  }

  // Unknown cycles must be resolved too — they might be True.
  std::vector<const ClassifiedCycle*> must_resolve;
  for (const auto& cycle : survey.cycles) {
    if (cycle.kind != CycleKind::kFalseResource) {
      must_resolve.push_back(&cycle);
    }
  }

  Solver solver{states, must_resolve, {}, {}, 0, options.backtrack_budget};
  if (!solver.solve(0)) {
    result.backtracks = solver.backtracks;
    result.budget_exhausted = solver.budget == 0;
    return result;
  }

  result.success = true;
  result.removed = std::move(solver.removal_log);
  result.backtracks = solver.backtracks;
  result.reduced = cwg.graph;  // copy, then prune
  for (const auto& [from, to] : result.removed) {
    result.reduced.remove_edge(from, to);
  }
  return result;
}

}  // namespace wormnet::cwg
