// [companion] The channel waiting graph (CWG).
//
// Vertices are channels; there is an edge ci -> cj iff some message, on some
// permitted path, can occupy ci and later (at the head of any downstream
// channel it has reached) have cj as a *waiting* channel.  Because arbitrary
// message lengths are allowed, "later" is any number of hops — the message is
// simply assumed long enough to still occupy ci.
//
// The CWG is a subgraph of the channel dependency graph restricted to the
// dependencies that can actually participate in a deadlock configuration
// (messages deadlock on the channels they *wait* for, not on the ones they
// merely may use), which is why waiting-graph conditions are strictly less
// restrictive than dependency-graph conditions.
#pragma once

#include <map>
#include <vector>

#include "wormnet/cdg/states.hpp"
#include "wormnet/graph/digraph.hpp"

namespace wormnet::cwg {

using cdg::StateGraph;
using topology::ChannelId;
using topology::NodeId;
using topology::Topology;

struct Cwg {
  graph::Digraph graph;
  /// For each edge, the destinations witnessing it (used by the cycle
  /// classifier to reconstruct candidate message paths).
  std::map<std::pair<ChannelId, ChannelId>, std::vector<NodeId>> witnesses;
};

/// Builds the channel waiting graph over the reachable states.
[[nodiscard]] Cwg build_cwg(const StateGraph& states);

/// Definition 10: every reachable blocked state (including injection states)
/// offers at least one waiting channel.  Any deadlock-free algorithm must be
/// wait-connected.  On failure the report names the starved state.
struct WaitConnectivity {
  bool connected = true;
  bool at_injection = false;  ///< witness is an injection state
  NodeId src = 0;             ///< valid when at_injection
  ChannelId channel = topology::kInvalidChannel;  ///< valid otherwise
  NodeId dest = 0;

  [[nodiscard]] std::string describe(const Topology& topo) const;
};

/// Full wait-connectivity check with witness.
[[nodiscard]] WaitConnectivity wait_connectivity(const StateGraph& states);

/// Witness-free convenience wrapper.
[[nodiscard]] bool wait_connected(const StateGraph& states);

}  // namespace wormnet::cwg
