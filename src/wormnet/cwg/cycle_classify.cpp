#include "wormnet/cwg/cycle_classify.hpp"

#include <algorithm>

#include "wormnet/graph/cycles.hpp"
#include "wormnet/obs/probe.hpp"

namespace wormnet::cwg {
namespace {

struct CandidatePath {
  std::vector<ChannelId> channels;  ///< channels the message occupies
  NodeId dest = 0;
};

/// Enumerates held-channel paths for "message occupies `from`, eventually
/// blocks somewhere with `waited` as a waiting channel, destination `dest`".
/// Paths are simple in channels (a queue holds one message at a time).
void enumerate_paths(const StateGraph& states, ChannelId from, ChannelId waited,
                     NodeId dest, const ClassifyLimits& limits,
                     std::vector<CandidatePath>& out, bool& truncated) {
  const std::size_t max_len = limits.max_path_length
                                  ? limits.max_path_length
                                  : states.topo().num_channels();
  std::vector<ChannelId> path{from};
  std::vector<bool> on_path(states.topo().num_channels(), false);
  on_path[from] = true;

  // Iterative DFS with explicit child indices.
  struct Frame {
    ChannelId channel;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{from, 0}};
  while (!stack.empty()) {
    if (out.size() >= limits.max_paths_per_edge) {
      truncated = true;
      return;
    }
    Frame& frame = stack.back();
    if (frame.next == 0) {
      // First visit: does the message block here waiting for `waited`?
      const auto waits = states.waiting(frame.channel, dest);
      if (std::find(waits.begin(), waits.end(), waited) != waits.end()) {
        CandidatePath cand;
        cand.channels = path;
        cand.dest = dest;
        out.push_back(std::move(cand));
      }
    }
    const auto succs = states.successors(frame.channel, dest);
    bool descended = false;
    while (frame.next < succs.size()) {
      const ChannelId next = succs[frame.next++];
      if (on_path[next] || path.size() >= max_len) continue;
      // The message must not already occupy the waited-for channel.
      if (next == waited) continue;
      on_path[next] = true;
      path.push_back(next);
      stack.push_back(Frame{next, 0});
      descended = true;
      break;
    }
    if (!descended && frame.next >= succs.size()) {
      on_path[frame.channel] = false;
      path.pop_back();
      stack.pop_back();
    }
  }
}

/// Backtracking search for a pairwise channel-disjoint selection.
bool select_disjoint(const std::vector<std::vector<CandidatePath>>& options,
                     const std::vector<std::size_t>& order, std::size_t idx,
                     std::vector<bool>& used,
                     std::vector<const CandidatePath*>& chosen,
                     std::size_t& budget) {
  if (idx == order.size()) return true;
  const std::size_t msg = order[idx];
  for (const CandidatePath& cand : options[msg]) {
    if (budget == 0) return false;
    --budget;
    bool clash = false;
    for (ChannelId c : cand.channels) {
      if (used[c]) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    for (ChannelId c : cand.channels) used[c] = true;
    chosen[msg] = &cand;
    if (select_disjoint(options, order, idx + 1, used, chosen, budget)) {
      return true;
    }
    for (ChannelId c : cand.channels) used[c] = false;
    chosen[msg] = nullptr;
  }
  return false;
}

}  // namespace

const char* to_string(CycleKind kind) {
  switch (kind) {
    case CycleKind::kTrue:
      return "true-cycle";
    case CycleKind::kFalseResource:
      return "false-resource";
    case CycleKind::kUnknown:
      return "unknown";
  }
  return "?";
}

ClassifiedCycle classify_cycle(const StateGraph& states, const Cwg& cwg,
                               std::span<const graph::Vertex> cycle,
                               const ClassifyLimits& limits) {
  const obs::PhaseTimer timer("cycle_classify");
  ClassifiedCycle result;
  result.channels.assign(cycle.begin(), cycle.end());
  const std::size_t k = cycle.size();

  // Candidate paths per message i (holds cycle[i], waits for cycle[i+1]).
  bool truncated = false;
  std::vector<std::vector<CandidatePath>> options(k);
  for (std::size_t i = 0; i < k; ++i) {
    const ChannelId held = cycle[i];
    const ChannelId waited = cycle[(i + 1) % k];
    auto witness = cwg.witnesses.find({held, waited});
    if (witness == cwg.witnesses.end()) {
      // Not actually a CWG edge; cannot be realized at all.
      result.kind = CycleKind::kFalseResource;
      return result;
    }
    for (NodeId dest : witness->second) {
      if (options[i].size() >= limits.max_paths_per_edge) break;
      enumerate_paths(states, held, waited, dest, limits, options[i],
                      truncated);
    }
    if (options[i].empty()) {
      // Edge witnessed but no realizable path under the caps.
      result.kind = truncated ? CycleKind::kUnknown : CycleKind::kFalseResource;
      return result;
    }
  }

  // Fewest-options-first ordering tightens the backtracking.
  std::vector<std::size_t> order(k);
  for (std::size_t i = 0; i < k; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return options[a].size() < options[b].size();
  });

  std::vector<bool> used(states.topo().num_channels(), false);
  std::vector<const CandidatePath*> chosen(k, nullptr);
  std::size_t budget = limits.max_assignments;
  if (select_disjoint(options, order, 0, used, chosen, budget)) {
    result.kind = CycleKind::kTrue;
    for (std::size_t i = 0; i < k; ++i) {
      result.witness_paths.push_back(chosen[i]->channels);
      result.witness_dests.push_back(chosen[i]->dest);
    }
    return result;
  }
  result.kind = (truncated || budget == 0) ? CycleKind::kUnknown
                                           : CycleKind::kFalseResource;
  return result;
}

CycleSurvey survey_cycles(const StateGraph& states, const Cwg& cwg,
                          std::size_t max_cycles,
                          const ClassifyLimits& limits) {
  CycleSurvey survey;
  auto enumeration = graph::enumerate_cycles(cwg.graph, max_cycles);
  survey.enumeration_truncated = enumeration.truncated;
  survey.cycles.reserve(enumeration.cycles.size());
  for (const auto& cycle : enumeration.cycles) {
    ClassifiedCycle classified = classify_cycle(states, cwg, cycle, limits);
    switch (classified.kind) {
      case CycleKind::kTrue:
        ++survey.true_cycles;
        break;
      case CycleKind::kFalseResource:
        ++survey.false_cycles;
        break;
      case CycleKind::kUnknown:
        ++survey.unknown_cycles;
        break;
    }
    survey.cycles.push_back(std::move(classified));
  }
  return survey;
}

}  // namespace wormnet::cwg
