// [companion] True Cycles vs False Resource Cycles (Section 7).
//
// A CWG cycle is only deadlock-capable if the messages forming it can occupy
// pairwise-disjoint channel sets — a *True Cycle*.  If every realization
// forces two messages to occupy one channel simultaneously, the cycle is a
// *False Resource Cycle*: the configuration is physically impossible and can
// be ignored.
//
// The classifier implements the paper's channel-disjoint-path matching with
// backtracking: for each cycle edge vi -> v_{i+1}, enumerate (bounded) the
// candidate held-channel paths of the message that occupies vi and waits for
// v_{i+1}; then search for a pairwise channel-disjoint selection.  With
// untruncated enumeration the answer is exact for suffix-closed relations;
// truncation or pre-cycle sharing (the case the paper leaves open) yields
// kUnknown.
#pragma once

#include <span>

#include "wormnet/cwg/cwg_builder.hpp"

namespace wormnet::cwg {

enum class CycleKind : std::uint8_t { kTrue, kFalseResource, kUnknown };

[[nodiscard]] const char* to_string(CycleKind kind);

struct ClassifyLimits {
  std::size_t max_paths_per_edge = 64;
  std::size_t max_path_length = 0;  ///< 0 = number of channels in the network
  std::size_t max_assignments = 100000;
};

struct ClassifiedCycle {
  std::vector<ChannelId> channels;
  CycleKind kind = CycleKind::kUnknown;
  /// One realization (per-message held-channel paths) when kind == kTrue.
  std::vector<std::vector<ChannelId>> witness_paths;
  /// Destination of each witness message, parallel to witness_paths.
  std::vector<NodeId> witness_dests;
};

/// Classifies one cycle (vertex sequence, closing edge implied).
[[nodiscard]] ClassifiedCycle classify_cycle(
    const StateGraph& states, const Cwg& cwg,
    std::span<const graph::Vertex> cycle, const ClassifyLimits& limits = {});

struct CycleSurvey {
  std::vector<ClassifiedCycle> cycles;
  std::size_t true_cycles = 0;
  std::size_t false_cycles = 0;
  std::size_t unknown_cycles = 0;
  bool enumeration_truncated = false;
};

/// Enumerates (capped) and classifies every elementary CWG cycle.
[[nodiscard]] CycleSurvey survey_cycles(const StateGraph& states,
                                        const Cwg& cwg,
                                        std::size_t max_cycles = 10000,
                                        const ClassifyLimits& limits = {});

}  // namespace wormnet::cwg
