// [companion] CWG -> CWG' reduction (Section 8).
//
// For algorithms whose blocked messages may wait on ANY candidate channel,
// an acyclic CWG is sufficient but not necessary: it suffices that some
// subgraph CWG' exists such that the algorithm is still wait-connected when
// messages only count the waiting options that survive in CWG', and CWG' has
// no True Cycles.  The reduction searches for such a subgraph by removing
// waiting edges one True Cycle at a time, backtracking when a removal would
// break wait-connectivity.
//
// Wait-connectivity under removals is checked state-wise: every reachable
// blocked state (c, d) must retain a waiting channel w such that the edge
// (h, w) survives for EVERY channel h the message could still hold (every h
// with a state-graph path h ->* c for destination d).  This is the
// edge-granularity reading of the paper's procedure.
#pragma once

#include <vector>

#include "wormnet/cwg/cycle_classify.hpp"

namespace wormnet::cwg {

struct ReductionResult {
  bool success = false;
  /// Removed waiting edges, in removal order (the "E_r" log of the paper).
  std::vector<std::pair<ChannelId, ChannelId>> removed;
  /// The surviving subgraph (valid when success).
  graph::Digraph reduced;
  std::size_t backtracks = 0;
  bool budget_exhausted = false;
};

struct ReductionOptions {
  std::size_t max_cycles = 10000;
  std::size_t backtrack_budget = 10000;
  ClassifyLimits classify;
};

/// Attempts to reduce the CWG to a True-Cycle-free, wait-connected CWG'.
/// On success the algorithm is deadlock-free under wait-on-any semantics
/// (companion Theorem 3); on failure with the search exhausted, it is not.
[[nodiscard]] ReductionResult reduce_cwg(const StateGraph& states,
                                         const Cwg& cwg,
                                         const ReductionOptions& options = {});

/// Variant reusing an already-computed cycle survey (avoids re-enumerating
/// and re-classifying when the caller surveyed first).
[[nodiscard]] ReductionResult reduce_cwg(const StateGraph& states,
                                         const Cwg& cwg,
                                         const CycleSurvey& survey,
                                         const ReductionOptions& options);

}  // namespace wormnet::cwg
