#include "wormnet/cwg/cwg_builder.hpp"

#include "wormnet/obs/probe.hpp"

namespace wormnet::cwg {

Cwg build_cwg(const StateGraph& states) {
  const obs::PhaseTimer timer("cwg_build");
  const auto& topo = states.topo();
  const std::size_t channels = topo.num_channels();
  Cwg out;
  out.graph = graph::Digraph(channels);

  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId held = 0; held < channels; ++held) {
      if (!states.reachable(held, dest)) continue;
      // Any state (blocked, dest) the message can reach while still holding
      // `held` contributes its waiting channels.
      for (ChannelId blocked = 0; blocked < channels; ++blocked) {
        if (!states.reachable(blocked, dest)) continue;
        if (!states.reaches(held, blocked, dest)) continue;
        for (ChannelId waited : states.waiting(blocked, dest)) {
          out.graph.add_edge(held, waited);
          auto& list = out.witnesses[{held, waited}];
          if (list.empty() || list.back() != dest) list.push_back(dest);
        }
      }
    }
  }
  if (auto* probe = obs::checker_probe()) {
    ++probe->cwg_builds;
    probe->cwg_edges += out.graph.num_edges();
  }
  return out;
}

bool wait_connected(const StateGraph& states) {
  const auto& topo = states.topo();
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, dest)) continue;
      if (topo.channel(c).dst == dest) continue;  // delivered
      if (states.waiting(c, dest).empty()) return false;
    }
    for (NodeId src = 0; src < topo.num_nodes(); ++src) {
      if (src == dest) continue;
      if (states.injection_waiting(src, dest).empty()) return false;
    }
  }
  return true;
}

}  // namespace wormnet::cwg
