#include "wormnet/cwg/cwg_builder.hpp"

#include "wormnet/obs/probe.hpp"

namespace wormnet::cwg {

Cwg build_cwg(const StateGraph& states) {
  const obs::PhaseTimer timer("cwg_build");
  const auto& topo = states.topo();
  const std::size_t channels = topo.num_channels();
  Cwg out;
  out.graph = graph::Digraph(channels);

  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId held = 0; held < channels; ++held) {
      if (!states.reachable(held, dest)) continue;
      // Any state (blocked, dest) the message can reach while still holding
      // `held` contributes its waiting channels.
      for (ChannelId blocked = 0; blocked < channels; ++blocked) {
        if (!states.reachable(blocked, dest)) continue;
        if (!states.reaches(held, blocked, dest)) continue;
        for (ChannelId waited : states.waiting(blocked, dest)) {
          out.graph.add_edge(held, waited);
          auto& list = out.witnesses[{held, waited}];
          if (list.empty() || list.back() != dest) list.push_back(dest);
        }
      }
    }
  }
  if (auto* probe = obs::checker_probe()) {
    ++probe->cwg_builds;
    probe->cwg_edges += out.graph.num_edges();
  }
  return out;
}

std::string WaitConnectivity::describe(const Topology& topo) const {
  if (connected) return "wait-connected";
  if (at_injection) {
    return "injection at node " + std::to_string(src) + " for destination " +
           std::to_string(dest) + " has no waiting channel";
  }
  return "state (" + topo.channel_name(channel) + ", dest " +
         std::to_string(dest) + ") has no waiting channel";
}

WaitConnectivity wait_connectivity(const StateGraph& states) {
  WaitConnectivity report;
  const auto& topo = states.topo();
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, dest)) continue;
      if (topo.channel(c).dst == dest) continue;  // delivered
      if (states.waiting(c, dest).empty()) {
        report.connected = false;
        report.channel = c;
        report.dest = dest;
        return report;
      }
    }
    for (NodeId src = 0; src < topo.num_nodes(); ++src) {
      if (src == dest) continue;
      if (states.injection_waiting(src, dest).empty()) {
        report.connected = false;
        report.at_injection = true;
        report.src = src;
        report.dest = dest;
        return report;
      }
    }
  }
  return report;
}

bool wait_connected(const StateGraph& states) {
  return wait_connectivity(states).connected;
}

}  // namespace wormnet::cwg
