#include "wormnet/cdg/states.hpp"

#include <deque>

namespace wormnet::cdg {

StateGraph::StateGraph(const Topology& topo, const RoutingFunction& routing)
    : topo_(&topo), routing_(&routing) {
  const std::size_t channels = topo.num_channels();
  const NodeId nodes = topo.num_nodes();
  reachable_.assign(channels * nodes, false);
  succ_.assign(channels * nodes, {});
  wait_.assign(channels * nodes, {});
  inject_.assign(static_cast<std::size_t>(nodes) * nodes, {});
  inject_wait_.assign(static_cast<std::size_t>(nodes) * nodes, {});
  closure_.resize(nodes);

  // Forward fixpoint per destination.
  std::deque<ChannelId> frontier;
  for (NodeId dest = 0; dest < nodes; ++dest) {
    frontier.clear();
    for (NodeId src = 0; src < nodes; ++src) {
      if (src == dest) continue;
      ChannelSet first =
          routing.route(topology::kInvalidChannel, src, dest);
      for (ChannelId c : first) {
        if (!reachable_[index(c, dest)]) {
          reachable_[index(c, dest)] = true;
          frontier.push_back(c);
        }
      }
      inject_wait_[static_cast<std::size_t>(src) * nodes + dest] =
          routing.waiting(topology::kInvalidChannel, src, dest);
      inject_[static_cast<std::size_t>(src) * nodes + dest] = std::move(first);
    }
    while (!frontier.empty()) {
      const ChannelId c = frontier.front();
      frontier.pop_front();
      const NodeId head = topo.channel(c).dst;
      const std::size_t idx = index(c, dest);
      if (head == dest) continue;  // sink state: consumed
      succ_[idx] = routing.route(c, head, dest);
      wait_[idx] = routing.waiting(c, head, dest);
      for (ChannelId next : succ_[idx]) {
        if (!reachable_[index(next, dest)]) {
          reachable_[index(next, dest)] = true;
          frontier.push_back(next);
        }
      }
    }
  }
  for (bool r : reachable_) num_reachable_ += r ? 1 : 0;
}

void StateGraph::ensure_closure(NodeId dest) const {
  auto& matrix = closure_[dest];
  if (!matrix.empty()) return;
  const std::size_t channels = topo_->num_channels();
  const std::size_t words = (channels + 63) / 64;
  matrix.assign(channels * words, 0);
  // DFS from each reachable channel.  Rows are reused as visited sets.
  std::vector<ChannelId> stack;
  for (ChannelId c = 0; c < channels; ++c) {
    if (!reachable_[index(c, dest)]) continue;
    std::uint64_t* row = &matrix[c * words];
    stack.clear();
    stack.push_back(c);
    row[c / 64] |= 1ULL << (c % 64);
    while (!stack.empty()) {
      const ChannelId u = stack.back();
      stack.pop_back();
      for (ChannelId v : succ_[index(u, dest)]) {
        if (!(row[v / 64] & (1ULL << (v % 64)))) {
          row[v / 64] |= 1ULL << (v % 64);
          stack.push_back(v);
        }
      }
    }
  }
}

bool StateGraph::reaches(ChannelId from, ChannelId to, NodeId dest) const {
  if (!reachable_[index(from, dest)]) return false;
  ensure_closure(dest);
  const std::size_t channels = topo_->num_channels();
  const std::size_t words = (channels + 63) / 64;
  return (closure_[dest][from * words + to / 64] >> (to % 64)) & 1;
}

std::string ConnectivityReport::describe(const Topology& topo) const {
  switch (failure) {
    case Failure::kNone:
      return "connected";
    case Failure::kNoInjection:
      return "no first hop for source " + std::to_string(src) +
             " -> destination " + std::to_string(dest);
    case Failure::kDeadEnd:
      return "dead-end state (" + topo.channel_name(channel) +
             ", dest " + std::to_string(dest) + "): no outputs supplied";
    case Failure::kCannotFinish:
      return "state (" + topo.channel_name(channel) + ", dest " +
             std::to_string(dest) + ") can never reach its destination";
  }
  return "?";
}

ConnectivityReport relation_connectivity(const StateGraph& states) {
  ConnectivityReport report;
  const Topology& topo = states.topo();
  for (NodeId d = 0; d < topo.num_nodes(); ++d) {
    for (NodeId s = 0; s < topo.num_nodes(); ++s) {
      if (s != d && states.injection(s, d).empty()) {
        report.failure = ConnectivityReport::Failure::kNoInjection;
        report.src = s;
        report.dest = d;
        return report;
      }
    }
    // Collect sinks, then require every reachable state to reach one.
    std::vector<ChannelId> sinks;
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (states.reachable(c, d) && topo.channel(c).dst == d) {
        sinks.push_back(c);
      }
    }
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, d)) continue;
      if (topo.channel(c).dst == d) continue;
      if (states.successors(c, d).empty()) {
        report.failure = ConnectivityReport::Failure::kDeadEnd;
        report.channel = c;
        report.dest = d;
        return report;
      }
      bool delivers = false;
      for (ChannelId sink : sinks) {
        if (states.reaches(c, sink, d)) {
          delivers = true;
          break;
        }
      }
      if (!delivers) {
        report.failure = ConnectivityReport::Failure::kCannotFinish;
        report.channel = c;
        report.dest = d;
        return report;
      }
    }
  }
  return report;
}

bool relation_connected(const StateGraph& states) {
  return relation_connectivity(states).connected();
}

bool relation_minimal(const StateGraph& states) {
  const Topology& topo = states.topo();
  for (NodeId d = 0; d < topo.num_nodes(); ++d) {
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, d)) continue;
      const NodeId at = topo.channel(c).dst;
      if (at == d) continue;
      for (ChannelId next : states.successors(c, d)) {
        if (topo.distance(topo.channel(next).dst, d) + 1 !=
            topo.distance(at, d)) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<std::pair<ChannelId, NodeId>> StateGraph::states() const {
  std::vector<std::pair<ChannelId, NodeId>> out;
  out.reserve(num_reachable_);
  const std::size_t channels = topo_->num_channels();
  for (NodeId dest = 0; dest < topo_->num_nodes(); ++dest) {
    for (ChannelId c = 0; c < channels; ++c) {
      if (reachable_[index(c, dest)]) out.emplace_back(c, dest);
    }
  }
  return out;
}

}  // namespace wormnet::cdg
