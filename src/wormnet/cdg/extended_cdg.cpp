#include "wormnet/cdg/extended_cdg.hpp"

#include <vector>

#include "wormnet/obs/probe.hpp"

namespace wormnet::cdg {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::kDirect:
      return "direct";
    case DepKind::kIndirect:
      return "indirect";
    case DepKind::kDirectCross:
      return "direct-cross";
    case DepKind::kIndirectCross:
      return "indirect-cross";
  }
  return "?";
}

namespace {

/// Records (or strengthens) the classification of edge u -> v.  Direct beats
/// indirect and same-destination beats cross, so a cycle witness always shows
/// the simplest way each dependency arises.
void note_kind(ExtendedCdg& out, graph::Vertex u, graph::Vertex v,
               DepKind kind) {
  const auto [it, inserted] = out.edge_kinds.try_emplace({u, v}, kind);
  if (inserted) return;
  const auto rank = [](DepKind k) {
    switch (k) {
      case DepKind::kDirect:
        return 0;
      case DepKind::kDirectCross:
        return 1;
      case DepKind::kIndirect:
        return 2;
      case DepKind::kIndirectCross:
        return 3;
    }
    return 4;
  };
  if (rank(kind) < rank(it->second)) it->second = kind;
}

}  // namespace

ExtendedCdg build_extended_cdg(const Subfunction& sub) {
  const obs::PhaseTimer timer("ecdg_build");
  obs::CheckerStats* const probe = obs::checker_probe();
  const StateGraph& states = sub.states();
  const Topology& topo = states.topo();
  const std::size_t channels = topo.num_channels();

  ExtendedCdg out;
  out.graph = graph::Digraph(channels);
  out.direct_only = graph::Digraph(channels);

  std::vector<bool> visited(channels);
  std::vector<ChannelId> stack;

  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId ci = 0; ci < channels; ++ci) {
      if (!states.reachable(ci, dest) || !sub.in_c1(ci, dest)) continue;

      // Direct (and direct-cross) edges: escape successors of (ci, dest).
      for (ChannelId cj : states.successors(ci, dest)) {
        if (!sub.in_any_c1(cj)) continue;
        const bool cross = !sub.in_c1(cj, dest);
        if (out.graph.add_edge(ci, cj)) {
          ++out.direct_edges;
          if (cross) ++out.cross_edges;
        }
        note_kind(out, ci, cj,
                  cross ? DepKind::kDirectCross : DepKind::kDirect);
        out.direct_only.add_edge(ci, cj);
      }

      // Indirect (and indirect-cross) edges: walk through successor states
      // whose channel is NOT escape for this destination, collecting the
      // escape channels supplied anywhere along the excursion.
      std::fill(visited.begin(), visited.end(), false);
      stack.clear();
      for (ChannelId mid : states.successors(ci, dest)) {
        if (!sub.in_c1(mid, dest) && !visited[mid]) {
          visited[mid] = true;
          stack.push_back(mid);
        }
      }
      while (!stack.empty()) {
        const ChannelId mid = stack.back();
        stack.pop_back();
        if (probe) ++probe->ecdg_excursion_visits;
        for (ChannelId cj : states.successors(mid, dest)) {
          if (sub.in_any_c1(cj)) {
            const bool cross = !sub.in_c1(cj, dest);
            if (out.graph.add_edge(ci, cj)) {
              ++out.indirect_edges;
              if (cross) ++out.cross_edges;
            }
            note_kind(out, ci, cj,
                      cross ? DepKind::kIndirectCross : DepKind::kIndirect);
          }
          if (!sub.in_c1(cj, dest) && !visited[cj]) {
            visited[cj] = true;
            stack.push_back(cj);
          }
        }
      }
    }
  }
  if (probe) {
    ++probe->ecdg_builds;
    probe->ecdg_direct_edges += out.direct_edges;
    probe->ecdg_indirect_edges += out.indirect_edges;
    probe->ecdg_cross_edges += out.cross_edges;
  }
  return out;
}

}  // namespace wormnet::cdg
