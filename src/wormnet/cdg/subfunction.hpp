// Routing subfunctions (the R1 of the necessary-and-sufficient condition).
//
// R1 restricts the base relation to an *escape* channel set C1:
//
//     R1(input, n, d) = R(input, n, d) ∩ C1(d)
//
// C1 may be one channel set for all traffic (the common case, matching
// Duato's 1993 sufficient condition) or vary per destination (the ICPP'94
// generalization that introduces cross dependencies).
//
// For the condition to certify deadlock freedom, R1 must be *connected*:
// every message, wherever it is, must be able to finish its journey using
// escape channels alone.  Two facets are checked:
//   * node connectivity — from every node, every destination is reachable
//     hopping only on C1(d) channels supplied by R;
//   * escape-everywhere — every reachable state (c, d) whose head is not d
//     offers at least one R1 output (so a blocked message always has an
//     escape to wait on, regardless of how it got where it is).
#pragma once

#include <string>
#include <vector>

#include "wormnet/cdg/states.hpp"

namespace wormnet::cdg {

class Subfunction;

/// Witness for a failed subfunction connectivity or escape-everywhere check
/// — *which* node is stranded or *which* state has no escape, so checkers and
/// lint rules can explain a rejection instead of reporting a bare bool.
struct SubfunctionWitness {
  enum class Kind : std::uint8_t {
    kNone,              ///< the check passed
    kUnreachableNode,   ///< node cannot reach dest hopping on C1(dest) only
    kNoEscape,          ///< reachable state (channel, dest) has no R1 output
    kNoInjectionEscape  ///< injection state (src, dest) has no R1 first hop
  };
  Kind kind = Kind::kNone;
  NodeId node = 0;  ///< kUnreachableNode: stranded node; kNoInjectionEscape: src
  ChannelId channel = topology::kInvalidChannel;  ///< kNoEscape: occupied channel
  NodeId dest = 0;  ///< destination under check (all failure kinds)

  [[nodiscard]] bool ok() const { return kind == Kind::kNone; }
  [[nodiscard]] std::string describe(const Topology& topo) const;
};

/// Builds a per-destination subfunction from an *escape relation*: C1(d) is
/// the set of channels the escape relation can use toward destination d
/// (its reachable channels for d).  This is the ICPP'94 generalization where
/// each pair gets its own escape set — the situation that makes cross
/// dependencies necessary.  `escape` must be a sub-relation of the base
/// relation of `states` (checked per reachable state in debug builds).
[[nodiscard]] Subfunction per_destination_from_escape(
    const StateGraph& states, const RoutingFunction& escape,
    std::string label);

class Subfunction {
 public:
  /// Uniform escape set: C1(d) = C1 for every destination.
  Subfunction(const StateGraph& states, std::vector<bool> c1,
              std::string label);

  /// Per-destination escape sets: c1_by_dest[d] is the C1 for destination d.
  /// Introduces cross dependencies in the extended CDG.
  Subfunction(const StateGraph& states,
              std::vector<std::vector<bool>> c1_by_dest, std::string label);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const StateGraph& states() const noexcept { return *states_; }
  [[nodiscard]] bool per_destination() const noexcept {
    return !c1_by_dest_.empty();
  }

  [[nodiscard]] bool in_c1(ChannelId c, NodeId dest) const {
    return per_destination() ? c1_by_dest_[dest][c] : c1_[c];
  }

  /// True if c belongs to C1(d) for *some* destination d (cross-dependency
  /// targets).  O(1) — precomputed union.
  [[nodiscard]] bool in_any_c1(ChannelId c) const { return c1_union_[c]; }

  /// R1 outputs for state (input channel c at node `current`, destination d).
  [[nodiscard]] ChannelSet r1(ChannelId input, NodeId current,
                              NodeId dest) const;

  /// Node connectivity of R1 (see file comment).
  [[nodiscard]] bool connected() const;

  /// Escape-everywhere over reachable states (see file comment).
  [[nodiscard]] bool escape_everywhere() const;

  /// Node-connectivity check with witness: on failure names a node that
  /// cannot reach some destination using C1(dest) hops alone.
  [[nodiscard]] SubfunctionWitness connectivity_witness() const;

  /// Escape-everywhere check with witness: on failure names the reachable
  /// (or injection) state that offers no R1 output to wait on.
  [[nodiscard]] SubfunctionWitness escape_witness() const;

  [[nodiscard]] std::size_t channel_count() const;

 private:
  const StateGraph* states_;
  std::vector<bool> c1_;                           // uniform form
  std::vector<std::vector<bool>> c1_by_dest_;      // per-destination form
  std::vector<bool> c1_union_;
  std::string label_;
};

}  // namespace wormnet::cdg
