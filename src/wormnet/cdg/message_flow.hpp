// The message-flow model (Lin, McKinley & Ni) — the third proof technique
// the theory papers discuss.
//
// A routing relation is deadlock-free if no channel can be held forever.
// Starting from the sink channels (whose messages are consumed by
// assumption) and working backward: a channel is *eventually freed* if, for
// every reachable (channel, destination) state, the message either has
// arrived or can wait on some channel already known to be eventually freed.
// If the least fixpoint covers every reachable channel, no deadlock
// configuration can form.
//
// As the target paper points out, this is a SUFFICIENT condition only
// (despite its original billing as exact): failure to cover all channels
// proves nothing.  The verifier therefore maps "covered" to deadlock-free
// and "not covered" to unknown.
#pragma once

#include <vector>

#include "wormnet/cdg/states.hpp"

namespace wormnet::cdg {

struct MessageFlowReport {
  bool covered = false;  ///< every reachable channel is eventually freed
  /// Channels the fixpoint could not resolve (empty iff covered).
  std::vector<ChannelId> unresolved;
  std::size_t rounds = 0;  ///< fixpoint iterations
};

[[nodiscard]] MessageFlowReport message_flow_check(const StateGraph& states);

}  // namespace wormnet::cdg
