// The necessary-and-sufficient condition checker.
//
//   Theorem (Duato, ICPP'94 / TPDS'95): a connected adaptive routing
//   function R for interconnection network I is deadlock-free iff there
//   exists a routing subfunction R1 that is connected and whose extended
//   channel dependency graph is acyclic.
//
// `check()` evaluates the condition for a given subfunction;
// `search()` hunts for a qualifying subfunction using, in order:
//   1. the full channel set (degenerates to the classical acyclic-CDG test),
//   2. a caller-provided candidate (e.g. the escape layer of a DuatoAdaptive
//      construction),
//   3. virtual-channel-class subsets (all 2^vcs - 1 of them; the canonical
//      escape structure of k-ary n-cube algorithms),
//   4. greedy cycle-breaking (drop a cycle channel, keep connectivity,
//      retry — with backtracking up to a budget),
//   5. exhaustive enumeration of channel subsets for tiny networks.
//
// The search is exponential in the worst case (as the paper itself notes for
// such procedures), so a failed search yields verdict kNoSubfunctionFound —
// proof of deadlock-susceptibility only when the exhaustive stage covered the
// whole space (`exhaustive_complete`).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "wormnet/cdg/extended_cdg.hpp"
#include "wormnet/cdg/subfunction.hpp"

namespace wormnet::cdg {

struct DuatoReport {
  bool connected = false;
  bool escape_everywhere = false;
  bool acyclic = false;
  std::size_t direct_edges = 0;
  std::size_t indirect_edges = 0;
  std::size_t cross_edges = 0;
  std::vector<graph::Vertex> witness_cycle;  ///< channels, when cyclic
  /// Kind of each witness-cycle edge: witness_cycle_kinds[i] classifies the
  /// dependency witness_cycle[i] -> witness_cycle[(i+1) % size].
  std::vector<DepKind> witness_cycle_kinds;
  /// Where connectivity / escape-everywhere failed, when either is false.
  SubfunctionWitness connectivity_witness;
  std::string subfunction_label;

  [[nodiscard]] bool holds() const {
    return connected && escape_everywhere && acyclic;
  }
};

/// Evaluates the condition for one candidate subfunction.
[[nodiscard]] DuatoReport check(const Subfunction& sub);

struct SearchOptions {
  /// Networks with at most this many channels get exhaustive subset search.
  std::size_t exhaustive_channel_limit = 14;
  /// Greedy cycle-breaking backtrack budget (number of candidate removals).
  std::size_t greedy_budget = 2000;
  /// Extra candidate escape sets to try first (e.g. a known escape layer).
  std::vector<std::pair<std::vector<bool>, std::string>> seeded_candidates;
};

struct SearchResult {
  bool found = false;
  /// Valid when found: the qualifying subfunction's channel set + report.
  std::vector<bool> c1;
  DuatoReport report;
  /// The stage-1 (all-channels) report, kept even when the search fails: its
  /// witness cycle is the concrete dependency cycle of the base relation's
  /// CDG, which callers report as the "why" of a failed search.
  DuatoReport full_set_report;
  /// True when the failed search enumerated every subset, making
  /// "no subfunction exists" a proof rather than a budget artifact.
  bool exhaustive_complete = false;
  std::size_t candidates_tried = 0;
};

/// Searches for a subfunction satisfying the condition.
[[nodiscard]] SearchResult search(const StateGraph& states,
                                  const SearchOptions& options = {});

}  // namespace wormnet::cdg
