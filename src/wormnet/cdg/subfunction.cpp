#include "wormnet/cdg/subfunction.hpp"

#include <stdexcept>

namespace wormnet::cdg {

Subfunction::Subfunction(const StateGraph& states, std::vector<bool> c1,
                         std::string label)
    : states_(&states), c1_(std::move(c1)), label_(std::move(label)) {
  if (c1_.size() != states.topo().num_channels()) {
    throw std::invalid_argument("C1 size mismatch");
  }
  c1_union_ = c1_;
}

Subfunction::Subfunction(const StateGraph& states,
                         std::vector<std::vector<bool>> c1_by_dest,
                         std::string label)
    : states_(&states), c1_by_dest_(std::move(c1_by_dest)),
      label_(std::move(label)) {
  const std::size_t channels = states.topo().num_channels();
  if (c1_by_dest_.size() != states.topo().num_nodes()) {
    throw std::invalid_argument("per-destination C1 count mismatch");
  }
  c1_union_.assign(channels, false);
  for (const auto& set : c1_by_dest_) {
    if (set.size() != channels) {
      throw std::invalid_argument("C1 size mismatch");
    }
    for (std::size_t c = 0; c < channels; ++c) {
      if (set[c]) c1_union_[c] = true;
    }
  }
}

ChannelSet Subfunction::r1(ChannelId input, NodeId current,
                           NodeId dest) const {
  ChannelSet out;
  for (ChannelId c : states_->routing().route(input, current, dest)) {
    if (in_c1(c, dest)) out.push_back(c);
  }
  return out;
}

std::string SubfunctionWitness::describe(const Topology& topo) const {
  switch (kind) {
    case Kind::kNone:
      return "ok";
    case Kind::kUnreachableNode:
      return "node " + std::to_string(node) + " cannot reach destination " +
             std::to_string(dest) + " on escape channels alone";
    case Kind::kNoEscape:
      return "state (" + topo.channel_name(channel) + ", dest " +
             std::to_string(dest) + ") has no escape channel to wait on";
    case Kind::kNoInjectionEscape:
      return "injection at node " + std::to_string(node) +
             " for destination " + std::to_string(dest) +
             " has no escape first hop";
  }
  return "?";
}

SubfunctionWitness Subfunction::connectivity_witness() const {
  SubfunctionWitness witness;
  const Topology& topo = states_->topo();
  const NodeId nodes = topo.num_nodes();
  // For each destination, reverse-BFS from dest over "u -> v is an R1 hop for
  // dest" edges; every node must be reached.
  std::vector<bool> ok(nodes, false);
  std::vector<NodeId> stack;
  for (NodeId dest = 0; dest < nodes; ++dest) {
    std::fill(ok.begin(), ok.end(), false);
    ok[dest] = true;
    stack.assign(1, dest);
    // Build reverse reachability by scanning in-channels of reached nodes.
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (ChannelId c : topo.in_channels(v)) {
        const NodeId u = topo.channel(c).src;
        if (ok[u] || u == dest) continue;
        if (!in_c1(c, dest)) continue;
        // The hop must actually be supplied by R at u for dest (wildcard
        // injection input keeps this conservative for C x N x N relations).
        bool supplied = false;
        for (ChannelId r : states_->routing().route(topology::kInvalidChannel,
                                                    u, dest)) {
          if (r == c) {
            supplied = true;
            break;
          }
        }
        // Also accept hops supplied mid-route (reachable state with this
        // successor) — needed for relations whose first hop differs.
        if (!supplied && states_->reachable(c, dest)) supplied = true;
        if (supplied) {
          ok[u] = true;
          stack.push_back(u);
        }
      }
    }
    for (NodeId u = 0; u < nodes; ++u) {
      if (!ok[u]) {
        witness.kind = SubfunctionWitness::Kind::kUnreachableNode;
        witness.node = u;
        witness.dest = dest;
        return witness;
      }
    }
  }
  return witness;
}

SubfunctionWitness Subfunction::escape_witness() const {
  SubfunctionWitness witness;
  const Topology& topo = states_->topo();
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states_->reachable(c, dest)) continue;
      const NodeId head = topo.channel(c).dst;
      if (head == dest) continue;
      bool has_escape = false;
      for (ChannelId next : states_->successors(c, dest)) {
        if (in_c1(next, dest)) {
          has_escape = true;
          break;
        }
      }
      if (!has_escape) {
        witness.kind = SubfunctionWitness::Kind::kNoEscape;
        witness.channel = c;
        witness.dest = dest;
        return witness;
      }
    }
    // Injection states need an escape too.
    for (NodeId src = 0; src < topo.num_nodes(); ++src) {
      if (src == dest) continue;
      bool has_escape = false;
      for (ChannelId c : states_->injection(src, dest)) {
        if (in_c1(c, dest)) {
          has_escape = true;
          break;
        }
      }
      if (!has_escape) {
        witness.kind = SubfunctionWitness::Kind::kNoInjectionEscape;
        witness.node = src;
        witness.dest = dest;
        return witness;
      }
    }
  }
  return witness;
}

bool Subfunction::connected() const {
  return connectivity_witness().ok();
}

bool Subfunction::escape_everywhere() const {
  return escape_witness().ok();
}

Subfunction per_destination_from_escape(const StateGraph& states,
                                        const RoutingFunction& escape,
                                        std::string label) {
  const Topology& topo = states.topo();
  const StateGraph escape_states(topo, escape);
  std::vector<std::vector<bool>> c1_by_dest(
      topo.num_nodes(), std::vector<bool>(topo.num_channels(), false));
  for (NodeId d = 0; d < topo.num_nodes(); ++d) {
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (escape_states.reachable(c, d)) c1_by_dest[d][c] = true;
    }
  }
  return Subfunction(states, std::move(c1_by_dest), std::move(label));
}

std::size_t Subfunction::channel_count() const {
  std::size_t count = 0;
  for (bool b : c1_union_) count += b ? 1 : 0;
  return count;
}

}  // namespace wormnet::cdg
