#include "wormnet/cdg/duato_checker.hpp"

#include <algorithm>

#include "wormnet/obs/probe.hpp"

namespace wormnet::cdg {

DuatoReport check(const Subfunction& sub) {
  DuatoReport report;
  report.subfunction_label = sub.label();
  const SubfunctionWitness connectivity = sub.connectivity_witness();
  report.connected = connectivity.ok();
  if (!report.connected) report.connectivity_witness = connectivity;
  const SubfunctionWitness escape = sub.escape_witness();
  report.escape_everywhere = escape.ok();
  if (report.connected && !report.escape_everywhere) {
    report.connectivity_witness = escape;
  }
  const ExtendedCdg ecdg = build_extended_cdg(sub);
  report.direct_edges = ecdg.direct_edges;
  report.indirect_edges = ecdg.indirect_edges;
  report.cross_edges = ecdg.cross_edges;
  auto cycle = ecdg.graph.find_cycle();
  report.acyclic = !cycle.has_value();
  if (cycle) {
    report.witness_cycle = std::move(*cycle);
    report.witness_cycle_kinds.reserve(report.witness_cycle.size());
    for (std::size_t i = 0; i < report.witness_cycle.size(); ++i) {
      const graph::Vertex from = report.witness_cycle[i];
      const graph::Vertex to =
          report.witness_cycle[(i + 1) % report.witness_cycle.size()];
      report.witness_cycle_kinds.push_back(ecdg.kind(from, to));
    }
  }
  return report;
}

namespace {

/// Tries one candidate set; updates `result` on success.
bool try_candidate(const StateGraph& states, std::vector<bool> c1,
                   const std::string& label, SearchResult& result) {
  ++result.candidates_tried;
  if (auto* probe = obs::checker_probe()) ++probe->subfunction_candidates;
  Subfunction sub(states, c1, label);
  // Cheap gates first: connectivity checks are much faster than the ECDG.
  if (!sub.connected() || !sub.escape_everywhere()) return false;
  DuatoReport report = check(sub);
  if (!report.holds()) return false;
  result.found = true;
  result.c1 = std::move(c1);
  result.report = std::move(report);
  return true;
}

/// Greedy cycle breaking: repeatedly drop one channel that participates in a
/// cycle of the current candidate's extended CDG, as long as connectivity
/// survives; depth-first with backtracking over which cycle channel to drop.
bool greedy_search(const StateGraph& states, SearchResult& result,
                   std::size_t budget) {
  struct Frame {
    std::vector<bool> c1;
    std::vector<graph::Vertex> cycle;
    std::size_t next_choice = 0;
  };
  std::vector<Frame> stack;
  std::vector<bool> all(states.topo().num_channels(), true);
  stack.push_back(Frame{std::move(all), {}, 0});

  std::size_t spent = 0;
  while (!stack.empty() && spent < budget) {
    Frame& frame = stack.back();
    if (frame.cycle.empty()) {
      ++spent;
      if (auto* probe = obs::checker_probe()) {
        ++probe->greedy_expansions;
        ++probe->subfunction_candidates;
      }
      Subfunction sub(states, frame.c1, "greedy");
      if (sub.connected() && sub.escape_everywhere()) {
        DuatoReport report = check(sub);
        if (report.holds()) {
          result.found = true;
          result.c1 = frame.c1;
          result.report = std::move(report);
          result.report.subfunction_label = "greedy-derived escape set";
          return true;
        }
        frame.cycle = std::move(report.witness_cycle);
        if (frame.cycle.empty()) {
          // Cyclic report must carry a cycle; defensive.
          stack.pop_back();
          continue;
        }
      } else {
        stack.pop_back();
        continue;
      }
    }
    if (frame.next_choice >= frame.cycle.size()) {
      stack.pop_back();
      continue;
    }
    const graph::Vertex drop = frame.cycle[frame.next_choice++];
    std::vector<bool> next_c1 = frame.c1;
    next_c1[drop] = false;
    stack.push_back(Frame{std::move(next_c1), {}, 0});
  }
  return false;
}

}  // namespace

SearchResult search(const StateGraph& states, const SearchOptions& options) {
  SearchResult result;
  const Topology& topo = states.topo();
  const std::size_t channels = topo.num_channels();

  // Stage 1: the full set (classical acyclic-CDG test; with C1 = C the
  // extended CDG has no excursions, so it equals the plain CDG).  Its report
  // is kept on the result either way: when every later stage fails, the
  // full-set witness cycle is the concrete "why".
  {
    const obs::PhaseTimer timer("search_full_set");
    ++result.candidates_tried;
    if (auto* probe = obs::checker_probe()) ++probe->subfunction_candidates;
    std::vector<bool> all(channels, true);
    const Subfunction sub(states, all, "all-channels");
    result.full_set_report = check(sub);
    if (result.full_set_report.holds()) {
      result.found = true;
      result.c1 = std::move(all);
      result.report = result.full_set_report;
      return result;
    }
  }

  // Stage 2: caller-seeded candidates (e.g. known escape layers).
  {
    const obs::PhaseTimer timer("search_seeded");
    for (const auto& [c1, label] : options.seeded_candidates) {
      if (try_candidate(states, c1, label, result)) return result;
    }
  }

  // Stage 3: virtual-channel-class subsets on cube topologies.
  if (topo.is_cube() && topo.cube().vcs > 1) {
    const obs::PhaseTimer timer("search_vc_classes");
    const std::uint8_t vcs = topo.cube().vcs;
    for (std::uint32_t mask = 1; mask < (1u << vcs); ++mask) {
      if (mask == (1u << vcs) - 1) continue;  // full set already tried
      std::vector<bool> c1(channels, false);
      for (ChannelId c = 0; c < channels; ++c) {
        if (mask & (1u << topo.channel(c).vc)) c1[c] = true;
      }
      std::string label = "vc-classes:";
      for (std::uint8_t v = 0; v < vcs; ++v) {
        if (mask & (1u << v)) label += std::to_string(int(v));
      }
      if (try_candidate(states, std::move(c1), label, result)) return result;
    }
  }

  // Stage 4: greedy cycle breaking.
  {
    const obs::PhaseTimer timer("search_greedy");
    if (greedy_search(states, result, options.greedy_budget)) return result;
  }

  // Stage 5: exhaustive enumeration for tiny networks.
  if (channels <= options.exhaustive_channel_limit) {
    const obs::PhaseTimer timer("search_exhaustive");
    for (std::uint64_t mask = 1; mask + 1 < (1ULL << channels); ++mask) {
      std::vector<bool> c1(channels, false);
      for (ChannelId c = 0; c < channels; ++c) {
        if (mask & (1ULL << c)) c1[c] = true;
      }
      if (try_candidate(states, std::move(c1), "exhaustive", result)) {
        return result;
      }
    }
    result.exhaustive_complete = true;
  }
  return result;
}

}  // namespace wormnet::cdg
