#include "wormnet/cdg/cdg_builder.hpp"

#include "wormnet/obs/probe.hpp"

namespace wormnet::cdg {

graph::Digraph build_cdg(const StateGraph& states) {
  const obs::PhaseTimer timer("cdg_build");
  const Topology& topo = states.topo();
  graph::Digraph cdg(topo.num_channels());
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, dest)) continue;
      for (ChannelId next : states.successors(c, dest)) {
        cdg.add_edge(c, next);
      }
    }
  }
  if (auto* probe = obs::checker_probe()) {
    ++probe->cdg_builds;
    probe->cdg_edges += cdg.num_edges();
  }
  return cdg;
}

graph::Digraph build_cdg(const Topology& topo, const RoutingFunction& routing) {
  return build_cdg(StateGraph(topo, routing));
}

}  // namespace wormnet::cdg
