// The extended channel dependency graph of a routing subfunction — the graph
// whose acyclicity the paper's necessary-and-sufficient condition tests.
//
// For each destination d and each reachable escape state (ci, d) with
// ci ∈ C1(d), edges are added to every escape channel the message may come to
// wait for next:
//
//   direct          cj ∈ R(head(ci), d) ∩ C1(d)
//   indirect        cj ∈ R(n', d) ∩ C1(d) after one or more intermediate hops
//                   on channels supplied by R for d but NOT in C1(d)
//   direct cross    like direct, but cj ∈ C1(d') for some d' != d only
//   indirect cross  like indirect, but cj ∈ C1(d') for some d' != d only
//
// Cross dependencies only arise for per-destination subfunctions — they are
// exactly the coupling between different pairs' escape sets that the ICPP'94
// condition adds over the 1993 sufficient condition.
#pragma once

#include <cstddef>
#include <map>
#include <utility>

#include "wormnet/cdg/subfunction.hpp"
#include "wormnet/graph/digraph.hpp"

namespace wormnet::cdg {

/// Classification of one extended-CDG edge (file comment above).  An edge
/// witnessed several ways keeps the strongest explanation: direct beats
/// indirect, same-destination beats cross.
enum class DepKind : std::uint8_t {
  kDirect,
  kIndirect,
  kDirectCross,
  kIndirectCross,
};

[[nodiscard]] const char* to_string(DepKind kind);

struct ExtendedCdg {
  graph::Digraph graph;        ///< all dependency edges
  graph::Digraph direct_only;  ///< direct (+ direct cross) edges only
  std::size_t direct_edges = 0;
  std::size_t indirect_edges = 0;        ///< indirect edges not already direct
  std::size_t cross_edges = 0;           ///< edges whose target is escape only
                                         ///< for other destinations
  /// Kind of every edge in `graph` — lets cycle witnesses explain each hop
  /// (direct / indirect / direct-cross / indirect-cross).
  std::map<std::pair<graph::Vertex, graph::Vertex>, DepKind> edge_kinds;

  [[nodiscard]] DepKind kind(graph::Vertex from, graph::Vertex to) const {
    const auto it = edge_kinds.find({from, to});
    return it == edge_kinds.end() ? DepKind::kDirect : it->second;
  }
};

/// Builds the extended CDG of `sub` over its state graph.
[[nodiscard]] ExtendedCdg build_extended_cdg(const Subfunction& sub);

}  // namespace wormnet::cdg
