// Reachable channel states.
//
// A state is a pair (channel, destination): "some message destined for d can
// occupy c".  Every dependency graph in the library is built over *reachable*
// states only, computed as a forward fixpoint from the injection states; this
// matters for input-dependent relations (R : C x N x N), where naively
// evaluating the relation on unreachable inputs would create spurious
// dependencies and false negative verdicts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wormnet/routing/routing_function.hpp"
#include "wormnet/topology/topology.hpp"

namespace wormnet::cdg {

using routing::ChannelSet;
using routing::RoutingFunction;
using topology::ChannelId;
using topology::NodeId;
using topology::Topology;

class StateGraph {
 public:
  StateGraph(const Topology& topo, const RoutingFunction& routing);

  [[nodiscard]] const Topology& topo() const noexcept { return *topo_; }
  [[nodiscard]] const RoutingFunction& routing() const noexcept {
    return *routing_;
  }

  /// True iff some permitted path with destination `dest` uses channel `c`.
  [[nodiscard]] bool reachable(ChannelId c, NodeId dest) const {
    return reachable_[index(c, dest)];
  }

  /// Successor channels of state (c, dest) — the relation evaluated at the
  /// head of c with input channel c.  Empty if the head is the destination.
  [[nodiscard]] std::span<const ChannelId> successors(ChannelId c,
                                                      NodeId dest) const {
    return succ_[index(c, dest)];
  }

  /// Waiting channels of state (c, dest) — the subset of successors the
  /// message may wait for when blocked.
  [[nodiscard]] std::span<const ChannelId> waiting(ChannelId c,
                                                   NodeId dest) const {
    return wait_[index(c, dest)];
  }

  /// First-hop channels available at source `src` for destination `dest`
  /// (relation evaluated with the injection input).
  [[nodiscard]] const ChannelSet& injection(NodeId src, NodeId dest) const {
    return inject_[src * topo_->num_nodes() + dest];
  }

  /// Waiting channels for a message still at its source.
  [[nodiscard]] const ChannelSet& injection_waiting(NodeId src,
                                                    NodeId dest) const {
    return inject_wait_[src * topo_->num_nodes() + dest];
  }

  /// True iff state (from, dest) can reach state (to, dest) along successor
  /// edges in zero or more steps.  Memoized per destination (the closure is
  /// computed on first use for that destination).
  [[nodiscard]] bool reaches(ChannelId from, ChannelId to, NodeId dest) const;

  /// All reachable states, as (channel, dest) pairs (deterministic order).
  [[nodiscard]] std::vector<std::pair<ChannelId, NodeId>> states() const;

  [[nodiscard]] std::size_t num_reachable_states() const {
    return num_reachable_;
  }

 private:
  [[nodiscard]] std::size_t index(ChannelId c, NodeId dest) const {
    return static_cast<std::size_t>(dest) * topo_->num_channels() + c;
  }
  void ensure_closure(NodeId dest) const;

  const Topology* topo_;
  const RoutingFunction* routing_;
  std::vector<bool> reachable_;
  std::vector<ChannelSet> succ_;
  std::vector<ChannelSet> wait_;
  std::vector<ChannelSet> inject_;
  std::vector<ChannelSet> inject_wait_;
  std::size_t num_reachable_ = 0;

  // Per-destination transitive closure over channels, built lazily.
  // closure_[dest] is a C x C bit matrix (row-major, 64-bit words).
  mutable std::vector<std::vector<std::uint64_t>> closure_;
};

/// Why (and where) a relation fails to be *connected* (Definition 4's
/// precondition): every source-destination pair must have a first hop, no
/// reachable state may be a dead end, and every reachable state must still be
/// able to reach its destination.  On failure the report pins down one
/// offending (src, dest) pair or (channel, dest) state so callers can explain
/// the verdict instead of echoing a bare bool.
struct ConnectivityReport {
  enum class Failure : std::uint8_t {
    kNone,          ///< connected
    kNoInjection,   ///< no first hop for (src, dest)
    kDeadEnd,       ///< reachable state (channel, dest) with no outputs
    kCannotFinish,  ///< reachable state that never reaches a sink
  };
  Failure failure = Failure::kNone;
  NodeId src = 0;  ///< valid for kNoInjection
  ChannelId channel = topology::kInvalidChannel;  ///< kDeadEnd/kCannotFinish
  NodeId dest = 0;  ///< the destination being checked (all failure kinds)

  [[nodiscard]] bool connected() const { return failure == Failure::kNone; }
  /// One-line human rendering of the witness ("no route 3 -> 7", ...).
  [[nodiscard]] std::string describe(const Topology& topo) const;
};

/// Full connectivity check with witness (see ConnectivityReport).
[[nodiscard]] ConnectivityReport relation_connectivity(
    const StateGraph& states);

/// True iff the relation is connected (witness-free convenience wrapper).
[[nodiscard]] bool relation_connected(const StateGraph& states);

/// True iff every reachable hop strictly decreases the distance to the
/// destination.  Minimal relations never revisit a node, so they satisfy the
/// coherence precondition of the necessity direction; nonminimal relations
/// (e.g. the incoherent example) fall outside the condition's exact scope.
[[nodiscard]] bool relation_minimal(const StateGraph& states);

}  // namespace wormnet::cdg
