// Channel dependency graph (Dally & Seitz).
//
// Vertex = channel.  Edge ci -> cj iff some message, on some permitted path,
// may use cj immediately after ci.  Built by projecting the reachable state
// graph onto channels, so the CDG is exact for both relation forms.
//
// An acyclic CDG is the classical *sufficient* condition for deadlock freedom
// (and necessary-and-sufficient for deterministic relations); the point of
// the reproduced paper is that adaptive relations can be deadlock-free with a
// cyclic CDG — which the extended-CDG machinery (extended_cdg.hpp) certifies.
#pragma once

#include "wormnet/cdg/states.hpp"
#include "wormnet/graph/digraph.hpp"

namespace wormnet::cdg {

/// Builds the channel dependency graph from a precomputed state graph.
[[nodiscard]] graph::Digraph build_cdg(const StateGraph& states);

/// Convenience overload: builds the state graph internally.
[[nodiscard]] graph::Digraph build_cdg(const Topology& topo,
                                       const RoutingFunction& routing);

}  // namespace wormnet::cdg
