#include "wormnet/cdg/message_flow.hpp"

namespace wormnet::cdg {

MessageFlowReport message_flow_check(const StateGraph& states) {
  const Topology& topo = states.topo();
  const std::size_t channels = topo.num_channels();

  // ever_used[c]: c is reachable for some destination.
  std::vector<bool> ever_used(channels, false);
  for (NodeId d = 0; d < topo.num_nodes(); ++d) {
    for (ChannelId c = 0; c < channels; ++c) {
      if (states.reachable(c, d)) ever_used[c] = true;
    }
  }

  std::vector<bool> freed(channels, false);
  MessageFlowReport report;
  bool grew = true;
  while (grew) {
    grew = false;
    ++report.rounds;
    for (ChannelId c = 0; c < channels; ++c) {
      if (freed[c] || !ever_used[c]) continue;
      bool ok_for_all_dests = true;
      for (NodeId d = 0; d < topo.num_nodes() && ok_for_all_dests; ++d) {
        if (!states.reachable(c, d)) continue;
        if (topo.channel(c).dst == d) continue;  // consumed at destination
        bool has_freed_wait = false;
        for (ChannelId w : states.waiting(c, d)) {
          if (freed[w]) {
            has_freed_wait = true;
            break;
          }
        }
        if (!has_freed_wait) ok_for_all_dests = false;
      }
      if (ok_for_all_dests) {
        freed[c] = true;
        grew = true;
      }
    }
  }

  report.covered = true;
  for (ChannelId c = 0; c < channels; ++c) {
    if (ever_used[c] && !freed[c]) {
      report.covered = false;
      report.unresolved.push_back(c);
    }
  }
  return report;
}

}  // namespace wormnet::cdg
