#include "wormnet/core/verifier.hpp"

#include <optional>
#include <sstream>

#include "wormnet/cdg/cdg_builder.hpp"
#include "wormnet/cdg/message_flow.hpp"
#include "wormnet/core/certify.hpp"
#include "wormnet/cwg/cwg_builder.hpp"
#include "wormnet/cwg/cycle_classify.hpp"
#include "wormnet/obs/probe.hpp"

namespace wormnet::core {
namespace {

using routing::RelationForm;
using routing::WaitMode;

/// Certificate sink threaded through the checkers: null means the caller
/// does not want certificates (plain verify()).
using CertSink = std::optional<audit::Certificate>*;

/// True if every reachable state offers at most one output channel — the
/// deterministic case, where Dally–Seitz is exact.
bool is_deterministic(const cdg::StateGraph& states) {
  const auto& topo = states.topo();
  for (topology::NodeId d = 0; d < topo.num_nodes(); ++d) {
    for (topology::NodeId s = 0; s < topo.num_nodes(); ++s) {
      if (s != d && states.injection(s, d).size() > 1) return false;
    }
    for (topology::ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (states.reachable(c, d) && states.successors(c, d).size() > 1) {
        return false;
      }
    }
  }
  return true;
}

Verdict verify_cdg(const cdg::StateGraph& states, CertSink cert = nullptr) {
  Verdict verdict;
  verdict.method = "cdg-acyclic";
  const graph::Digraph cdg = cdg::build_cdg(states);
  auto cycle = cdg.find_cycle();
  if (!cycle) {
    verdict.conclusion = Conclusion::kDeadlockFree;
    std::ostringstream os;
    os << "channel dependency graph acyclic (" << cdg.num_edges()
       << " edges over " << cdg.num_vertices() << " channels)";
    verdict.detail = os.str();
    return verdict;
  }
  verdict.witness_channels = *cycle;
  if (is_deterministic(states)) {
    verdict.conclusion = Conclusion::kDeadlockable;
    verdict.detail =
        "deterministic relation with cyclic CDG (Dally-Seitz necessity): " +
        describe_cycle(states.topo(), *cycle);
    if (cert != nullptr) {
      *cert = certify_dependency_cycle(states, *cycle, "cdg-acyclic");
    }
  } else {
    verdict.conclusion = Conclusion::kUnknown;
    verdict.detail =
        "CDG cyclic; adaptive relation may still be deadlock-free: " +
        describe_cycle(states.topo(), *cycle);
  }
  return verdict;
}

Verdict verify_duato(const cdg::StateGraph& states,
                     const cdg::SearchOptions& options,
                     const routing::RoutingFunction& routing,
                     CertSink cert = nullptr) {
  Verdict verdict;
  verdict.method = "duato";
  const cdg::SearchResult result = cdg::search(states, options);
  if (cert != nullptr) *cert = certify_duato(states, result);
  if (result.found) {
    verdict.conclusion = Conclusion::kDeadlockFree;
    std::ostringstream os;
    os << "connected subfunction with acyclic extended CDG found ("
       << result.report.subfunction_label << "; direct "
       << result.report.direct_edges << ", indirect "
       << result.report.indirect_edges << ", cross "
       << result.report.cross_edges << " edges; " << result.candidates_tried
       << " candidates tried)";
    verdict.detail = os.str();
    return verdict;
  }
  const bool in_scope = routing.form() == RelationForm::kNodeDest &&
                        routing.wait_mode() == WaitMode::kAnyOf &&
                        cdg::relation_minimal(states);
  // Either way the failed search carries the full-set (plain-CDG) witness
  // cycle — the concrete dependency cycle no candidate managed to break.
  verdict.witness_channels = result.full_set_report.witness_cycle;
  if (result.exhaustive_complete && in_scope) {
    verdict.conclusion = Conclusion::kDeadlockable;
    verdict.detail =
        "no connected subfunction with acyclic extended CDG exists "
        "(exhaustive search) — by the necessary-and-sufficient condition the "
        "relation is not deadlock-free";
  } else {
    verdict.conclusion = Conclusion::kUnknown;
    std::ostringstream os;
    os << "no qualifying subfunction found within budget ("
       << result.candidates_tried << " candidates";
    if (!in_scope) {
      os << "; relation outside the condition's exact scope (input-dependent, "
            "wait-specific, or nonminimal/incoherent)";
    }
    os << ")";
    verdict.detail = os.str();
  }
  return verdict;
}

Verdict verify_cwg(const cdg::StateGraph& states,
                   const cwg::ReductionOptions& options,
                   const routing::RoutingFunction& routing,
                   CertSink cert = nullptr) {
  Verdict verdict;
  verdict.method = "cwg";
  const cwg::WaitConnectivity wait = cwg::wait_connectivity(states);
  if (!wait.connected) {
    verdict.conclusion = Conclusion::kDeadlockable;
    verdict.detail = "relation is not wait-connected: " +
                     wait.describe(states.topo());
    if (wait.channel != topology::kInvalidChannel) {
      verdict.witness_channels.push_back(wait.channel);
    }
    if (cert != nullptr) *cert = certify_not_wait_connected(states, wait);
    return verdict;
  }
  const cwg::Cwg graph = cwg::build_cwg(states);
  const cwg::CycleSurvey survey =
      cwg::survey_cycles(states, graph, options.max_cycles, options.classify);

  if (survey.true_cycles == 0 && survey.unknown_cycles == 0 &&
      !survey.enumeration_truncated) {
    verdict.conclusion = Conclusion::kDeadlockFree;
    std::ostringstream os;
    os << "wait-connected with no True Cycles in the CWG ("
       << survey.cycles.size() << " cycles, " << survey.false_cycles
       << " false-resource)";
    verdict.detail = os.str();
    return verdict;
  }

  if (routing.wait_mode() == WaitMode::kSpecific) {
    // Theorem-2 regime: True Cycles are exactly deadlock configurations.
    for (const auto& cycle : survey.cycles) {
      if (cycle.kind == cwg::CycleKind::kTrue) {
        verdict.conclusion = Conclusion::kDeadlockable;
        verdict.witness_channels = cycle.channels;
        verdict.detail = "True Cycle under wait-specific semantics: " +
                         describe_cycle(states.topo(), cycle.channels);
        if (cert != nullptr) *cert = certify_wait_cycle(states, cycle);
        return verdict;
      }
    }
    verdict.conclusion = Conclusion::kUnknown;
    verdict.detail = "unclassifiable cycles remain (enumeration truncated)";
    return verdict;
  }

  if (survey.enumeration_truncated) {
    verdict.conclusion = Conclusion::kUnknown;
    verdict.detail = "cycle enumeration truncated; CWG verdict unavailable "
                     "at this scale";
    return verdict;
  }

  // Theorem-3 regime: look for a True-Cycle-free wait-connected CWG'.
  const cwg::ReductionResult reduction =
      cwg::reduce_cwg(states, graph, survey, options);
  if (reduction.success) {
    verdict.conclusion = Conclusion::kDeadlockFree;
    std::ostringstream os;
    os << "CWG' found by removing " << reduction.removed.size()
       << " waiting edges (backtracks: " << reduction.backtracks << ")";
    verdict.detail = os.str();
    return verdict;
  }
  if (!reduction.budget_exhausted) {
    verdict.conclusion = Conclusion::kDeadlockable;
    verdict.detail =
        "every wait-connected CWG' retains a True Cycle — not deadlock-free "
        "under wait-on-any semantics";
    for (const auto& cycle : survey.cycles) {
      if (cycle.kind == cwg::CycleKind::kTrue) {
        verdict.witness_channels = cycle.channels;
        if (cert != nullptr) *cert = certify_wait_cycle(states, cycle);
        break;
      }
    }
  } else {
    verdict.conclusion = Conclusion::kUnknown;
    verdict.detail = "CWG' search budget exhausted";
  }
  return verdict;
}

Verdict verify_message_flow(const cdg::StateGraph& states) {
  Verdict verdict;
  verdict.method = "message-flow";
  const cdg::MessageFlowReport report = cdg::message_flow_check(states);
  if (report.covered) {
    verdict.conclusion = Conclusion::kDeadlockFree;
    std::ostringstream os;
    os << "every channel eventually freed (backward fixpoint, "
       << report.rounds << " rounds)";
    verdict.detail = os.str();
  } else {
    // Sufficient-only: unresolved channels prove nothing.
    verdict.conclusion = Conclusion::kUnknown;
    std::ostringstream os;
    os << report.unresolved.size()
       << " channels not provably freed (condition is sufficient only)";
    verdict.detail = os.str();
    verdict.witness_channels = report.unresolved;
  }
  return verdict;
}

Verdict verify_sim(const topology::Topology& topo,
                   const routing::RoutingFunction& routing,
                   const sim::SimConfig& config) {
  Verdict verdict;
  verdict.method = "simulation";
  const sim::SimStats stats = sim::run(topo, routing, config);
  if (stats.deadlocked) {
    verdict.conclusion = Conclusion::kDeadlockable;
    std::ostringstream os;
    os << "deadlock observed at cycle " << stats.deadlock.cycle;
    if (stats.deadlock.from_watchdog) {
      os << " (watchdog: no progress)";
    } else {
      os << " (wait-for cycle of " << stats.deadlock.packet_cycle.size()
         << " packets)";
    }
    verdict.detail = os.str();
    verdict.witness_channels = stats.deadlock.blocked_channels;
  } else {
    verdict.conclusion = Conclusion::kUnknown;
    std::ostringstream os;
    os << "no deadlock in " << stats.cycles_run << " cycles ("
       << stats.packets_delivered << " packets delivered)";
    verdict.detail = os.str();
  }
  return verdict;
}

Verdict verify_impl(const topology::Topology& topo,
                    const routing::RoutingFunction& routing,
                    const VerifyOptions& options, CertSink cert) {
  const std::string method_phase =
      std::string("verify.") + to_string(options.method);
  if (options.method == Method::kSimulation) {
    obs::Profiler::Scope timer(options.profiler, method_phase.c_str());
    return verify_sim(topo, routing, options.sim);
  }
  // With a profiler attached, also install a checker probe for the duration
  // so the static pipeline's fine-grained phases (cdg_build, search stages,
  // cycle_enumeration, ...) surface as "checker.<phase>" samples.
  std::optional<obs::CheckerStats> probe_stats;
  std::optional<obs::ProbeScope> probe;
  if (options.profiler != nullptr) {
    probe_stats.emplace();
    probe.emplace(*probe_stats);
  }
  std::optional<cdg::StateGraph> states;
  {
    obs::Profiler::Scope timer(options.profiler, "verify.state_graph");
    states.emplace(topo, routing);
  }
  Verdict verdict;
  {
    obs::Profiler::Scope timer(options.profiler, method_phase.c_str());
    switch (options.method) {
      case Method::kCdgAcyclic:
        verdict = verify_cdg(*states, cert);
        break;
      case Method::kDuato:
        verdict = verify_duato(*states, options.duato, routing, cert);
        break;
      case Method::kCwg:
        verdict = verify_cwg(*states, options.cwg, routing, cert);
        break;
      case Method::kMessageFlow:
        verdict = verify_message_flow(*states);
        break;
      default:
        break;
    }
  }
  if (options.profiler != nullptr) {
    probe.reset();
    for (const auto& [phase, seconds] : probe_stats->phase_seconds) {
      options.profiler->add("checker." + phase, seconds * 1000.0);
    }
  }
  return verdict;
}

}  // namespace

const char* to_string(Method method) {
  switch (method) {
    case Method::kCdgAcyclic:
      return "cdg-acyclic";
    case Method::kDuato:
      return "duato";
    case Method::kCwg:
      return "cwg";
    case Method::kMessageFlow:
      return "message-flow";
    case Method::kSimulation:
      return "simulation";
  }
  return "?";
}

Verdict verify(const topology::Topology& topo,
               const routing::RoutingFunction& routing,
               const VerifyOptions& options) {
  return verify_impl(topo, routing, options, nullptr);
}

CertifiedVerdict verify_certified(const topology::Topology& topo,
                                  const routing::RoutingFunction& routing,
                                  const VerifyOptions& options) {
  CertifiedVerdict result;
  result.verdict = verify_impl(topo, routing, options, &result.certificate);
  return result;
}

bool FullReport::consistent() const {
  bool free_proof = false;
  bool deadlock_proof = false;
  for (const Verdict* v : {&cdg, &duato, &cwg, &message_flow}) {
    if (v->conclusion == Conclusion::kDeadlockFree) free_proof = true;
    if (v->conclusion == Conclusion::kDeadlockable) deadlock_proof = true;
  }
  if (simulation.conclusion == Conclusion::kDeadlockable) {
    deadlock_proof = true;
  }
  return !(free_proof && deadlock_proof);
}

FullReport verify_all(const topology::Topology& topo,
                      const routing::RoutingFunction& routing,
                      const VerifyOptions& options) {
  FullReport report;
  const cdg::StateGraph states(topo, routing);
  report.cdg = verify_cdg(states);
  report.duato = verify_duato(states, options.duato, routing);
  report.cwg = verify_cwg(states, options.cwg, routing);
  report.message_flow = verify_message_flow(states);
  report.simulation = verify_sim(topo, routing, options.sim);
  return report;
}

}  // namespace wormnet::core
