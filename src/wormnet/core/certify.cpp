#include "wormnet/core/certify.hpp"

#include <algorithm>

#include "wormnet/cdg/extended_cdg.hpp"
#include "wormnet/cdg/subfunction.hpp"

namespace wormnet::core {
namespace {

using audit::Certificate;
using cdg::StateGraph;
using topology::ChannelId;
using topology::NodeId;

Certificate header(const StateGraph& states, audit::CertKind kind,
                   std::string_view method) {
  Certificate cert;
  cert.kind = kind;
  cert.method = method;
  cert.topology = states.topo().name();
  cert.routing = states.routing().name();
  cert.num_nodes = states.topo().num_nodes();
  cert.num_channels =
      static_cast<std::uint32_t>(states.topo().num_channels());
  return cert;
}

/// Escape path src -> dest for every source, as next-hop channels chosen by
/// a reverse BFS over supplied C1 hops (the same "supplied" notion the
/// subfunction connectivity check uses: a first hop of the relation, or a
/// reachable mid-route state).  next[u] == kInvalidChannel marks failure.
std::vector<ChannelId> escape_next_hops(const StateGraph& states,
                                        const std::vector<bool>& c1,
                                        NodeId dest) {
  const topology::Topology& topo = states.topo();
  std::vector<ChannelId> next(topo.num_nodes(), topology::kInvalidChannel);
  std::vector<bool> done(topo.num_nodes(), false);
  done[dest] = true;
  std::vector<NodeId> stack{dest};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (ChannelId c : topo.in_channels(v)) {
      const NodeId u = topo.channel(c).src;
      if (done[u] || u == dest || !c1[c]) continue;
      bool supplied = states.reachable(c, dest);
      if (!supplied) {
        for (ChannelId r :
             states.routing().route(topology::kInvalidChannel, u, dest)) {
          if (r == c) {
            supplied = true;
            break;
          }
        }
      }
      if (supplied) {
        done[u] = true;
        next[u] = c;
        stack.push_back(u);
      }
    }
  }
  return next;
}

std::optional<Certificate> certify_subfunction(const StateGraph& states,
                                               const std::vector<bool>& c1,
                                               const std::string& label) {
  const topology::Topology& topo = states.topo();
  const std::size_t channels = topo.num_channels();
  const NodeId nodes = topo.num_nodes();

  Certificate cert = header(states, audit::CertKind::kCertified, "duato");
  cert.subfunction = label;
  for (ChannelId c = 0; c < channels; ++c) {
    if (c1[c]) cert.escape_channels.push_back(c);
  }

  const cdg::Subfunction sub(states, c1, label);
  const cdg::ExtendedCdg ecdg = cdg::build_extended_cdg(sub);
  const auto order = ecdg.graph.topological_order();
  if (!order) return std::nullopt;  // checker said acyclic but it is not
  for (const graph::Vertex v : *order) {
    if (c1[v]) cert.topological_order.push_back(v);
  }

  for (NodeId dest = 0; dest < nodes; ++dest) {
    for (ChannelId c = 0; c < channels; ++c) {
      if (!states.reachable(c, dest) || topo.channel(c).dst == dest) continue;
      ChannelId via = topology::kInvalidChannel;
      for (ChannelId next : states.successors(c, dest)) {
        if (c1[next]) {
          via = next;
          break;
        }
      }
      if (via == topology::kInvalidChannel) return std::nullopt;
      cert.escapes.push_back({c, dest, via});
    }
    const std::vector<ChannelId> next = escape_next_hops(states, c1, dest);
    for (NodeId src = 0; src < nodes; ++src) {
      if (src == dest) continue;
      ChannelId via = topology::kInvalidChannel;
      for (ChannelId c : states.injection(src, dest)) {
        if (c1[c]) {
          via = c;
          break;
        }
      }
      if (via == topology::kInvalidChannel) return std::nullopt;
      cert.injection_escapes.push_back({src, dest, via});

      audit::WitnessPath path;
      path.src = src;
      path.dest = dest;
      for (NodeId at = src; at != dest;) {
        const ChannelId hop = next[at];
        if (hop == topology::kInvalidChannel) return std::nullopt;
        path.path.push_back(hop);
        at = topo.channel(hop).dst;
      }
      cert.witness_paths.push_back(std::move(path));
    }
  }
  return cert;
}

}  // namespace

std::optional<audit::Certificate> certify_dependency_cycle(
    const StateGraph& states, const std::vector<topology::ChannelId>& cycle,
    std::string_view method) {
  if (cycle.empty()) return std::nullopt;
  const topology::Topology& topo = states.topo();
  Certificate cert = header(states, audit::CertKind::kRefuted, method);
  cert.evidence = audit::Evidence::kDependencyCycle;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ChannelId from = cycle[i];
    const ChannelId to = cycle[(i + 1) % cycle.size()];
    // Attribute the edge to some destination whose reachable state supplies
    // it — one must exist for a genuine CDG edge.
    NodeId dest = topo.num_nodes();
    for (NodeId d = 0; d < topo.num_nodes() && dest == topo.num_nodes();
         ++d) {
      if (!states.reachable(from, d) || topo.channel(from).dst == d) continue;
      const auto succ = states.successors(from, d);
      if (std::find(succ.begin(), succ.end(), to) != succ.end()) dest = d;
    }
    if (dest == topo.num_nodes()) return std::nullopt;
    cert.cycle.push_back({from, to, dest, {}});
  }
  return cert;
}

std::optional<audit::Certificate> certify_duato(
    const StateGraph& states, const cdg::SearchResult& search) {
  if (search.found) {
    return certify_subfunction(states, search.c1,
                               search.report.subfunction_label);
  }
  const routing::RoutingFunction& routing = states.routing();
  const bool in_scope =
      routing.form() == routing::RelationForm::kNodeDest &&
      routing.wait_mode() == routing::WaitMode::kAnyOf &&
      cdg::relation_minimal(states);
  if (!search.exhaustive_complete || !in_scope) return std::nullopt;
  auto cert = certify_dependency_cycle(
      states, search.full_set_report.witness_cycle, "duato");
  if (cert) cert->subfunction = "none (exhaustive search)";
  return cert;
}

std::optional<audit::Certificate> certify_wait_cycle(
    const StateGraph& states, const cwg::ClassifiedCycle& cycle) {
  if (cycle.kind != cwg::CycleKind::kTrue ||
      cycle.witness_paths.size() != cycle.channels.size() ||
      cycle.witness_dests.size() != cycle.channels.size()) {
    return std::nullopt;
  }
  Certificate cert = header(states, audit::CertKind::kRefuted, "cwg");
  cert.evidence = audit::Evidence::kWaitCycle;
  for (std::size_t i = 0; i < cycle.channels.size(); ++i) {
    cert.cycle.push_back({cycle.channels[i],
                          cycle.channels[(i + 1) % cycle.channels.size()],
                          cycle.witness_dests[i], cycle.witness_paths[i]});
  }
  return cert;
}

audit::Certificate certify_not_wait_connected(
    const StateGraph& states, const cwg::WaitConnectivity& wait) {
  Certificate cert = header(states, audit::CertKind::kRefuted, "cwg");
  cert.evidence = audit::Evidence::kNotWaitConnected;
  cert.disconnection.at_injection = wait.at_injection;
  cert.disconnection.src = wait.src;
  cert.disconnection.channel =
      wait.at_injection ? 0 : wait.channel;
  cert.disconnection.dest = wait.dest;
  return cert;
}

}  // namespace wormnet::core
