#include "wormnet/core/witness.hpp"

#include <stdexcept>

namespace wormnet::core {

std::vector<sim::ScriptedPacket> build_witness_script(
    const topology::Topology& topo, const cwg::ClassifiedCycle& cycle,
    std::uint32_t buffer_depth) {
  if (cycle.kind != cwg::CycleKind::kTrue || cycle.witness_paths.empty()) {
    throw std::invalid_argument(
        "witness construction needs a True Cycle with witness paths");
  }
  const std::size_t k = cycle.channels.size();
  std::vector<sim::ScriptedPacket> script;
  script.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& path = cycle.witness_paths[i];
    sim::ScriptedPacket pkt;
    pkt.src = topo.channel(path.front()).src;
    pkt.dst = cycle.witness_dests[i];
    pkt.inject_cycle = 0;
    pkt.forced_path = path;
    // The next hop it will wait for (held by the next message in the cycle).
    pkt.forced_path.push_back(cycle.channels[(i + 1) % k]);
    // Long enough to keep every held channel occupied: fill all buffers on
    // the path plus slack.
    pkt.length =
        static_cast<std::uint32_t>((path.size() + 2) * buffer_depth + 4);
    script.push_back(std::move(pkt));
  }
  return script;
}

sim::SimStats replay_witness(const topology::Topology& topo,
                             const routing::RoutingFunction& routing,
                             const cwg::ClassifiedCycle& cycle,
                             std::uint32_t buffer_depth) {
  sim::SimConfig config;
  config.scripted_only = true;
  config.script = build_witness_script(topo, cycle, buffer_depth);
  config.buffer_depth = buffer_depth;
  config.warmup_cycles = 0;
  config.measure_cycles = 2000;
  config.drain_cycles = 8000;
  config.deadlock_check_interval = 16;
  config.watchdog_cycles = 1000;
  return sim::run(topo, routing, config);
}

}  // namespace wormnet::core
