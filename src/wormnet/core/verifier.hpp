// The verification façade: one entry point, four methods.
//
//   kCdgAcyclic  — classical Dally–Seitz test.  Sufficient for any relation;
//                  also *necessary* for deterministic relations, so a cyclic
//                  CDG on a deterministic relation proves deadlockability.
//   kDuato       — the paper's necessary-and-sufficient condition: search
//                  for a connected routing subfunction with acyclic extended
//                  channel dependency graph.  Exact (both directions) for
//                  input-independent (N x N), coherent, wait-on-any
//                  relations; sufficient-only outside that scope.
//   kCwg         — [companion] channel-waiting-graph conditions: for
//                  wait-specific relations, no True Cycles iff deadlock-free
//                  (exact); for wait-on-any, search for a True-Cycle-free
//                  wait-connected CWG'.
//   kSimulation  — empirical: stress the network in the flit-level simulator
//                  and watch for wait-for-graph deadlock.  Can only ever
//                  prove deadlockability.
#pragma once

#include <optional>

#include "wormnet/audit/certificate.hpp"
#include "wormnet/cdg/duato_checker.hpp"
#include "wormnet/core/verdict.hpp"
#include "wormnet/cwg/reduction.hpp"
#include "wormnet/obs/profiler.hpp"
#include "wormnet/routing/routing_function.hpp"
#include "wormnet/sim/simulator.hpp"

namespace wormnet::core {

enum class Method : std::uint8_t {
  kCdgAcyclic,
  kDuato,
  kCwg,
  kMessageFlow,  ///< Lin-McKinley-Ni backward channel-release fixpoint
  kSimulation,
};

[[nodiscard]] const char* to_string(Method method);

/// Default simulation settings for kSimulation: a deadlock-hunting stress
/// configuration rather than a performance measurement.
[[nodiscard]] inline sim::SimConfig default_verify_sim() {
  sim::SimConfig cfg;
  cfg.injection_rate = 0.45;
  cfg.packet_length = 16;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 20000;
  cfg.drain_cycles = 10000;
  return cfg;
}

struct VerifyOptions {
  Method method = Method::kDuato;
  cdg::SearchOptions duato;
  cwg::ReductionOptions cwg;
  sim::SimConfig sim = default_verify_sim();  ///< used by kSimulation
  /// Borrowed self-profiling registry (null = off).  When set, verify()
  /// times the state-graph build and the method dispatch as
  /// "verify.state_graph" / "verify.<method>", and additionally installs a
  /// checker probe so the static pipeline's internal phases land as one
  /// "checker.<phase>" sample each (the phase's total wall time).
  obs::Profiler* profiler = nullptr;
};

[[nodiscard]] Verdict verify(const topology::Topology& topo,
                             const routing::RoutingFunction& routing,
                             const VerifyOptions& options = {});

/// A verdict plus its proof-carrying certificate, when the verdict admits
/// one (DESIGN 3.10).  Certificates are emitted for: Duato certified
/// (escape set + topological order + connectivity witnesses), Duato
/// exhaustive refutation / deterministic cyclic CDG (dependency cycle),
/// CWG True-Cycle refutation (wait cycle with realization), and
/// wait-disconnection.  No certificate accompanies kUnknown verdicts or
/// universal deadlock-freedom claims with no compact witness (CWG
/// reduction success, acyclic plain CDG, message-flow, simulation).
struct CertifiedVerdict {
  Verdict verdict;
  std::optional<audit::Certificate> certificate;
};

/// Like verify(), but additionally emits the verdict's certificate so an
/// independent auditor (audit::check) can re-validate the conclusion.
[[nodiscard]] CertifiedVerdict verify_certified(
    const topology::Topology& topo, const routing::RoutingFunction& routing,
    const VerifyOptions& options = {});

/// Runs all four methods and checks they never contradict each other
/// (a "deadlock-free" proof alongside an observed deadlock is a library bug).
struct FullReport {
  Verdict cdg;
  Verdict duato;
  Verdict cwg;
  Verdict message_flow;
  Verdict simulation;
  [[nodiscard]] bool consistent() const;
};

[[nodiscard]] FullReport verify_all(const topology::Topology& topo,
                                    const routing::RoutingFunction& routing,
                                    const VerifyOptions& options = {});

}  // namespace wormnet::core
