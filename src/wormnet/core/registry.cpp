#include "wormnet/core/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "wormnet/routing/dateline.hpp"
#include "wormnet/routing/dimension_order.hpp"
#include "wormnet/routing/duato_adaptive.hpp"
#include "wormnet/routing/enhanced_hypercube.hpp"
#include "wormnet/routing/examples.hpp"
#include "wormnet/routing/hpl.hpp"
#include "wormnet/routing/turn_model.hpp"
#include "wormnet/routing/unrestricted.hpp"
#include "wormnet/topology/builders.hpp"

namespace wormnet::core {
namespace {

using topology::Topology;

bool is_mesh(const Topology& t) {
  if (!t.is_cube()) return false;
  for (std::size_t d = 0; d < t.num_dims(); ++d) {
    if (t.cube().wraps[d]) return false;
  }
  return !t.cube().unidirectional;
}

bool has_wrap(const Topology& t) {
  if (!t.is_cube()) return false;
  for (std::size_t d = 0; d < t.num_dims(); ++d) {
    if (t.cube().wraps[d]) return true;
  }
  return false;
}

bool is_hypercube(const Topology& t) {
  if (!t.is_cube() || t.cube().unidirectional) return false;
  for (std::uint32_t k : t.cube().radices) {
    if (k != 2) return false;
  }
  return true;
}

std::vector<AlgorithmEntry> build_registry() {
  std::vector<AlgorithmEntry> reg;

  reg.push_back({"e-cube",
                 "deterministic dimension-order routing (mesh/hypercube)",
                 [](const Topology& t) {
                   return std::make_unique<routing::DimensionOrder>(t);
                 },
                 [](const Topology& t) { return is_mesh(t); }});

  reg.push_back({"dateline",
                 "Dally-Seitz dateline VC routing (ring/torus, >= 2 VCs)",
                 [](const Topology& t) {
                   return std::make_unique<routing::DatelineRouting>(t);
                 },
                 [](const Topology& t) {
                   return has_wrap(t) && t.cube().vcs >= 2;
                 }});

  reg.push_back({"west-first", "turn-model partially adaptive (2-D mesh)",
                 [](const Topology& t) {
                   return std::make_unique<routing::WestFirst>(t);
                 },
                 [](const Topology& t) {
                   return is_mesh(t) && t.num_dims() == 2;
                 }});

  reg.push_back({"north-last", "turn-model partially adaptive (2-D mesh)",
                 [](const Topology& t) {
                   return std::make_unique<routing::NorthLast>(t);
                 },
                 [](const Topology& t) {
                   return is_mesh(t) && t.num_dims() == 2;
                 }});

  reg.push_back({"negative-first", "turn-model partially adaptive (n-D mesh)",
                 [](const Topology& t) {
                   return std::make_unique<routing::NegativeFirst>(t);
                 },
                 [](const Topology& t) { return is_mesh(t); }});

  reg.push_back(
      {"negative-first-nonmin",
       "turn-model, nonminimal negative phase (n-D mesh)",
       [](const Topology& t) {
         return std::make_unique<routing::NegativeFirst>(t, true);
       },
       [](const Topology& t) { return is_mesh(t); }});

  reg.push_back(
      {"duato-mesh", "fully adaptive, e-cube escape on vc0 (mesh, >= 2 VCs)",
       [](const Topology& t) { return routing::make_duato_mesh(t); },
       [](const Topology& t) {
         return is_mesh(t) && !is_hypercube(t) && t.cube().vcs >= 2;
       }});

  reg.push_back(
      {"duato-hypercube",
       "fully adaptive, e-cube escape on vc0 (hypercube, >= 2 VCs)",
       [](const Topology& t) { return routing::make_duato_hypercube(t); },
       [](const Topology& t) { return is_hypercube(t) && t.cube().vcs >= 2; }});

  reg.push_back(
      {"duato-torus",
       "fully adaptive, dateline escape on vc0/vc1 (torus, >= 3 VCs)",
       [](const Topology& t) { return routing::make_duato_torus(t); },
       [](const Topology& t) { return has_wrap(t) && t.cube().vcs >= 3; }});

  reg.push_back({"unrestricted",
                 "minimal fully adaptive with no restrictions (deadlock-prone)",
                 [](const Topology& t) {
                   return std::make_unique<routing::UnrestrictedMinimal>(t);
                 },
                 [](const Topology& t) { return t.is_cube(); }});

  reg.push_back({"hpl",
                 "[companion] Highest-Positive-Last, nonminimal, no VCs (mesh)",
                 [](const Topology& t) {
                   return std::make_unique<routing::HighestPositiveLast>(t);
                 },
                 [](const Topology& t) { return is_mesh(t); }});

  reg.push_back(
      {"hpl-minimal", "[companion] Highest-Positive-Last, minimal core (mesh)",
       [](const Topology& t) {
         return std::make_unique<routing::HighestPositiveLast>(t, false);
       },
       [](const Topology& t) { return is_mesh(t); }});

  reg.push_back(
      {"enhanced",
       "[companion] Enhanced Fully Adaptive (hypercube, 2 VCs)",
       [](const Topology& t) {
         return std::make_unique<routing::EnhancedFullyAdaptive>(t);
       },
       [](const Topology& t) { return is_hypercube(t) && t.cube().vcs >= 2; }});

  reg.push_back(
      {"enhanced-relaxed",
       "[companion] Enhanced with the Theorem-6 restriction removed (deadlocks)",
       [](const Topology& t) {
         return std::make_unique<routing::EnhancedFullyAdaptive>(t, true);
       },
       [](const Topology& t) { return is_hypercube(t) && t.cube().vcs >= 2; }});

  reg.push_back({"incoherent",
                 "[companion] Duato's incoherent example (wait-on-any)",
                 [](const Topology& t) {
                   return std::make_unique<routing::IncoherentRouting>(t);
                 },
                 [](const Topology& t) {
                   return t.name() == "incoherent-net";
                 }});

  reg.push_back(
      {"incoherent-specific",
       "[companion] Duato's incoherent example (wait-specific; deadlocks)",
       [](const Topology& t) {
         return std::make_unique<routing::IncoherentRouting>(t, true);
       },
       [](const Topology& t) { return t.name() == "incoherent-net"; }});

  return reg;
}

}  // namespace

const std::vector<AlgorithmEntry>& all_algorithms() {
  static const std::vector<AlgorithmEntry> registry = build_registry();
  return registry;
}

std::vector<const AlgorithmEntry*> algorithms_for(const Topology& topo) {
  std::vector<const AlgorithmEntry*> out;
  for (const auto& entry : all_algorithms()) {
    if (entry.applicable(topo)) out.push_back(&entry);
  }
  return out;
}

namespace {

std::vector<std::string> split_spec(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, sep)) parts.push_back(part);
  return parts;
}

std::uint32_t parse_count(const std::string& text, const std::string& spec) {
  try {
    const unsigned long value = std::stoul(text);
    if (value == 0 || value > 1u << 20) {
      throw std::invalid_argument("out of range");
    }
    return static_cast<std::uint32_t>(value);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number '" + text + "' in topology spec '" +
                                spec + "'");
  }
}

}  // namespace

topology::Topology make_topology(const std::string& spec) {
  const auto parts = split_spec(spec, ':');
  if (parts.empty()) throw std::invalid_argument("empty topology spec");
  const std::string& kind = parts[0];
  if (kind == "incoherent") return routing::make_incoherent_net();
  if (parts.size() < 2) {
    throw std::invalid_argument("topology spec needs a size: " + spec);
  }
  const std::uint8_t vcs =
      parts.size() > 2
          ? static_cast<std::uint8_t>(parse_count(parts[2], spec))
          : 1;
  if (kind == "hypercube") {
    return topology::make_hypercube(parse_count(parts[1], spec), vcs);
  }
  if (kind == "ring") {
    return topology::make_ring(parse_count(parts[1], spec), vcs);
  }
  if (kind == "uniring") {
    return topology::make_unidirectional_ring(parse_count(parts[1], spec),
                                              vcs);
  }
  std::vector<std::uint32_t> radices;
  for (const std::string& r : split_spec(parts[1], 'x')) {
    radices.push_back(parse_count(r, spec));
  }
  if (kind == "mesh") return topology::make_mesh(radices, vcs);
  if (kind == "torus") return topology::make_torus(radices, vcs);
  throw std::invalid_argument("unknown topology kind: " + kind);
}

std::string canonical_algorithm_name(const std::string& name,
                                     const Topology& topo) {
  if (name == "minimal-noescape") return "unrestricted";
  if (name == "duato") {
    for (const char* candidate :
         {"duato-hypercube", "duato-mesh", "duato-torus"}) {
      for (const auto& entry : all_algorithms()) {
        if (entry.name == candidate && entry.applicable(topo)) {
          return candidate;
        }
      }
    }
    throw std::invalid_argument(
        "alias 'duato' has no applicable construction for " + topo.name() +
        " (mesh/hypercube need >= 2 VCs, torus >= 3)");
  }
  return name;
}

std::unique_ptr<routing::RoutingFunction> make_algorithm(
    const std::string& name, const Topology& topo) {
  const std::string canonical = canonical_algorithm_name(name, topo);
  for (const auto& entry : all_algorithms()) {
    if (entry.name == canonical) {
      if (!entry.applicable(topo)) {
        throw std::invalid_argument("algorithm '" + canonical +
                                    "' not applicable to " + topo.name());
      }
      return entry.make(topo);
    }
  }
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

}  // namespace wormnet::core
