// Deadlock-freedom verdicts: the result type shared by every verification
// method (classical acyclic-CDG, Duato's necessary-and-sufficient condition,
// the channel-waiting-graph conditions, and empirical simulation).
#pragma once

#include <string>
#include <vector>

#include "wormnet/topology/topology.hpp"

namespace wormnet::core {

enum class Conclusion : std::uint8_t {
  kDeadlockFree,  ///< proven free (or, for simulation, see detail)
  kDeadlockable,  ///< proven susceptible, usually with a witness
  kUnknown,       ///< the method could not decide within its budget/scope
};

[[nodiscard]] const char* to_string(Conclusion conclusion);

struct Verdict {
  Conclusion conclusion = Conclusion::kUnknown;
  std::string method;  ///< which checker produced this
  std::string detail;  ///< human-readable justification
  /// Witness channels (a dependency/waiting cycle, or the channels of a
  /// simulated deadlock), when available.
  std::vector<topology::ChannelId> witness_channels;
};

/// Renders a witness cycle as "a -> b -> c -> a" using topology labels.
[[nodiscard]] std::string describe_cycle(
    const topology::Topology& topo,
    const std::vector<topology::ChannelId>& cycle);

}  // namespace wormnet::core
