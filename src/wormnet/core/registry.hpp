// Named routing-algorithm registry: maps algorithm names to factories and
// knows which algorithms apply to which topology (dimension, wraparound and
// virtual-channel requirements).  Drives the experiment harnesses and the
// examples, so every binary spells algorithm names the same way.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wormnet/routing/routing_function.hpp"

namespace wormnet::core {

using RoutingFactory = std::function<std::unique_ptr<routing::RoutingFunction>(
    const topology::Topology&)>;

struct AlgorithmEntry {
  std::string name;
  std::string description;
  RoutingFactory make;
  /// True if the algorithm can be instantiated on this topology.
  std::function<bool(const topology::Topology&)> applicable;
};

/// The full registry (stable order).
[[nodiscard]] const std::vector<AlgorithmEntry>& all_algorithms();

/// Algorithms applicable to `topo`, in registry order.
[[nodiscard]] std::vector<const AlgorithmEntry*> algorithms_for(
    const topology::Topology& topo);

/// Parses a topology spec string, shared by every CLI binary so they all
/// accept the same syntax:
///
///   mesh:4x4[:VCS]  torus:8x8[:VCS]  hypercube:N[:VCS]  ring:N[:VCS]
///   uniring:N[:VCS]  incoherent
///
/// Throws std::invalid_argument on malformed specs.
[[nodiscard]] topology::Topology make_topology(const std::string& spec);

/// Resolves CLI-friendly aliases to registry names for `topo`:
///   "duato"             -> the duato-* construction applicable to topo
///   "minimal-noescape"  -> "unrestricted" (minimal adaptive, no escape
///                          structure — the canonical deadlock-prone config)
/// Registry names and unknown names pass through unchanged; "duato" with no
/// applicable construction throws std::invalid_argument.
[[nodiscard]] std::string canonical_algorithm_name(
    const std::string& name, const topology::Topology& topo);

/// Instantiates by name (aliases accepted); throws std::invalid_argument for
/// unknown names or inapplicable topologies.
[[nodiscard]] std::unique_ptr<routing::RoutingFunction> make_algorithm(
    const std::string& name, const topology::Topology& topo);

}  // namespace wormnet::core
