// Certificate emission: turning checker results into audit::Certificates.
//
// Emission is NOT part of the trusted base — it leans on the cdg/ and cwg/
// machinery freely, because a wrong certificate is caught by audit::check()
// rather than trusted.  The division of labor (DESIGN 3.10):
//
//   checker (cdg/, cwg/)  — searches for the witness structures;
//   certify (this file)   — flattens them into the plain-data schema;
//   audit::check          — re-validates them against the relation alone.
//
// Certificates are emitted for decisive verdicts that admit a compact
// witness: a Duato-certified subfunction, an exhaustive Duato refutation's
// dependency cycle, a deterministic relation's cyclic CDG, a realizable
// (True) wait cycle, and a wait-disconnected state.  "Deadlock-free by CWG
// reduction" and budget-limited kUnknown verdicts carry no certificate —
// their justification is a universal claim with no small witness.
#pragma once

#include <optional>
#include <string_view>

#include "wormnet/audit/certificate.hpp"
#include "wormnet/cdg/duato_checker.hpp"
#include "wormnet/cdg/states.hpp"
#include "wormnet/cwg/cwg_builder.hpp"
#include "wormnet/cwg/cycle_classify.hpp"

namespace wormnet::core {

/// Certificate for a Duato search outcome over `states`: a certified
/// certificate when the search found a qualifying subfunction, a refuted
/// one (dependency-cycle evidence) when the exhaustive search proved no
/// subfunction exists for an in-scope relation.  nullopt when the verdict
/// is not decisive.  The topology/routing labels default to the bound
/// names; callers holding registry specs overwrite them afterwards.
[[nodiscard]] std::optional<audit::Certificate> certify_duato(
    const cdg::StateGraph& states, const cdg::SearchResult& search);

/// Refuted certificate from a direct dependency cycle (channel sequence,
/// closing edge implied) — used for deterministic cyclic-CDG verdicts and
/// internally for Duato refutations.  nullopt if some edge cannot be
/// attributed to a destination (a checker bug worth surfacing as "no
/// certificate" rather than an unverifiable one).
[[nodiscard]] std::optional<audit::Certificate> certify_dependency_cycle(
    const cdg::StateGraph& states,
    const std::vector<topology::ChannelId>& cycle, std::string_view method);

/// Refuted certificate from a classified True Cycle: the wait cycle plus
/// the held-channel path of every participating message (the realization
/// the classifier found).  nullopt unless `cycle.kind == kTrue`.
[[nodiscard]] std::optional<audit::Certificate> certify_wait_cycle(
    const cdg::StateGraph& states, const cwg::ClassifiedCycle& cycle);

/// Refuted certificate from a failed wait-connectivity check.
[[nodiscard]] audit::Certificate certify_not_wait_connected(
    const cdg::StateGraph& states, const cwg::WaitConnectivity& wait);

}  // namespace wormnet::core
