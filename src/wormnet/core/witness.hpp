// Constructive necessity: turn a True Cycle found by the static analysis
// into a concrete scripted-packet scenario and replay it in the flit-level
// simulator, reproducing an actual deadlock.
//
// This is the executable version of the necessity proofs: each message of
// the cycle is injected with a forced channel path that makes it occupy its
// witness channels and then wait for the next message's channel; because the
// witness paths are pairwise channel-disjoint (the definition of a True
// Cycle), every message reaches its blocking point, and the wait-for cycle
// closes.
#pragma once

#include <vector>

#include "wormnet/cwg/cycle_classify.hpp"
#include "wormnet/sim/simulator.hpp"

namespace wormnet::core {

/// Builds the scripted packets realizing `cycle` (must be a classified True
/// Cycle with witness paths).  `buffer_depth` sizes the packets so every
/// message is long enough to keep all its channels occupied while blocked.
[[nodiscard]] std::vector<sim::ScriptedPacket> build_witness_script(
    const topology::Topology& topo, const cwg::ClassifiedCycle& cycle,
    std::uint32_t buffer_depth);

/// Convenience: builds the script, runs a scripted-only simulation, and
/// returns its stats (stats.deadlocked is the point).
[[nodiscard]] sim::SimStats replay_witness(
    const topology::Topology& topo, const routing::RoutingFunction& routing,
    const cwg::ClassifiedCycle& cycle, std::uint32_t buffer_depth = 4);

}  // namespace wormnet::core
