#include "wormnet/core/verdict.hpp"

#include <sstream>

namespace wormnet::core {

const char* to_string(Conclusion conclusion) {
  switch (conclusion) {
    case Conclusion::kDeadlockFree:
      return "deadlock-free";
    case Conclusion::kDeadlockable:
      return "deadlockable";
    case Conclusion::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string describe_cycle(const topology::Topology& topo,
                           const std::vector<topology::ChannelId>& cycle) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i) os << " -> ";
    os << topo.channel_name(cycle[i]);
  }
  if (!cycle.empty()) os << " -> " << topo.channel_name(cycle.front());
  return os.str();
}

}  // namespace wormnet::core
