#include "wormnet/analysis/path_count.hpp"

#include <unordered_map>

namespace wormnet::analysis {
namespace {

using routing::ChannelSet;
using topology::ChannelId;
using topology::kInvalidChannel;

/// Memoized completions from "arrived on channel c" to dst; minimal hops
/// only.  The memo key is the channel, which also captures the input for
/// input-dependent relations.
class PathCounter {
 public:
  PathCounter(const Topology& topo, const RoutingFunction& routing, NodeId dst)
      : topo_(topo), routing_(routing), dst_(dst) {}

  [[nodiscard]] double from_source(NodeId src) {
    return expand(routing_.route(kInvalidChannel, src, dst_), src);
  }

 private:
  [[nodiscard]] double expand(const ChannelSet& candidates, NodeId current) {
    const std::uint32_t here = topo_.distance(current, dst_);
    double total = 0;
    for (ChannelId c : candidates) {
      const NodeId next = topo_.channel(c).dst;
      if (topo_.distance(next, dst_) + 1 != here) continue;  // not minimal
      total += completions(c);
    }
    return total;
  }

  [[nodiscard]] double completions(ChannelId c) {
    const NodeId at = topo_.channel(c).dst;
    if (at == dst_) return 1.0;
    auto memo = memo_.find(c);
    if (memo != memo_.end()) return memo->second;
    const double total = expand(routing_.route(c, at, dst_), at);
    memo_.emplace(c, total);
    return total;
  }

  const Topology& topo_;
  const RoutingFunction& routing_;
  NodeId dst_;
  std::unordered_map<ChannelId, double> memo_;
};

/// The all-minimal-paths relation, used as the denominator.
class AllMinimal final : public RoutingFunction {
 public:
  explicit AllMinimal(const Topology& topo) : RoutingFunction(topo) {}
  [[nodiscard]] std::string name() const override { return "all-minimal"; }
  [[nodiscard]] ChannelSet route(ChannelId, NodeId current,
                                 NodeId dest) const override {
    if (topo_->is_cube()) {
      return routing::minimal_channels(*topo_, current, dest, 0,
                                       topo_->cube().vcs - 1);
    }
    ChannelSet out;
    const std::uint32_t here = topo_->distance(current, dest);
    for (ChannelId c : topo_->out_channels(current)) {
      if (topo_->distance(topo_->channel(c).dst, dest) + 1 == here) {
        out.push_back(c);
      }
    }
    return out;
  }
};

}  // namespace

double count_permitted_paths(const Topology& topo,
                             const RoutingFunction& routing, NodeId src,
                             NodeId dst) {
  if (src == dst) return 0.0;
  PathCounter counter(topo, routing, dst);
  return counter.from_source(src);
}

double count_all_minimal_paths(const Topology& topo, NodeId src, NodeId dst) {
  if (src == dst) return 0.0;
  AllMinimal relation(topo);
  PathCounter counter(topo, relation, dst);
  return counter.from_source(src);
}

}  // namespace wormnet::analysis
