#include "wormnet/analysis/saturation.hpp"

namespace wormnet::analysis {
namespace {

struct Probe {
  bool saturated = false;
  bool deadlocked = false;
  double latency = 0.0;
};

Probe probe(const topology::Topology& topo,
            const routing::RoutingFunction& routing,
            const SaturationOptions& options, double rate,
            double zero_load_latency) {
  sim::SimConfig cfg = options.base;
  cfg.injection_rate = rate;
  const sim::SimStats stats = sim::run(topo, routing, cfg);
  Probe result;
  result.deadlocked = stats.deadlocked;
  result.latency = stats.avg_latency;
  result.saturated =
      stats.deadlocked || stats.saturated ||
      stats.accepted_throughput <
          options.accept_fraction * stats.offered_load ||
      (zero_load_latency > 0.0 &&
       stats.avg_latency > options.latency_factor * zero_load_latency);
  return result;
}

}  // namespace

SaturationResult find_saturation(const topology::Topology& topo,
                                 const routing::RoutingFunction& routing,
                                 const SaturationOptions& options) {
  SaturationResult result;
  // Zero-load latency at the low end.
  {
    sim::SimConfig cfg = options.base;
    cfg.injection_rate = options.low;
    const sim::SimStats stats = sim::run(topo, routing, cfg);
    result.zero_load_latency = stats.avg_latency;
    result.deadlocked = stats.deadlocked;
    if (stats.deadlocked) return result;
  }
  double lo = options.low;   // known unsaturated
  double hi = options.high;  // assumed saturated
  for (int i = 0; i < options.iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const Probe p =
        probe(topo, routing, options, mid, result.zero_load_latency);
    if (p.deadlocked) {
      result.deadlocked = true;
      return result;
    }
    if (p.saturated) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.saturation_rate = lo;
  return result;
}

}  // namespace wormnet::analysis
