// Turn census for 2-D meshes (Glass & Ni's vocabulary).
//
// In two dimensions there are eight 90-degree turns (four cross-dimension
// from-direction/to-direction pairs in each rotation sense).  The turn model
// proves that breaking every dependency cycle by prohibition alone requires
// prohibiting at least two of them (one per rotation sense), and that which
// ones are prohibited characterizes the classic partially adaptive
// algorithms.  The census reads the turns straight off the channel
// dependency graph, so it reflects what the relation actually permits —
// including relations (like HPL) whose turns are only conditionally allowed.
#pragma once

#include <array>
#include <cstdint>

#include "wormnet/cdg/states.hpp"

namespace wormnet::analysis {

/// Direction index for 2-D turns: X+ = 0, X- = 1, Y+ = 2, Y- = 3.
enum : std::size_t { kXPos = 0, kXNeg = 1, kYPos = 2, kYNeg = 3 };

[[nodiscard]] const char* direction_name(std::size_t direction);

struct TurnCensus {
  /// permitted[from][to] for cross-dimension pairs; same-dimension entries
  /// are always false (0-degree and 180-degree turns are not counted here).
  std::array<std::array<bool, 4>, 4> permitted{};
  std::size_t permitted_count = 0;   ///< out of the eight 90-degree turns
  std::size_t prohibited_count = 0;
};

/// Computes the census from the reachable dependencies of a 2-D mesh
/// relation.  Throws for non-2-D or wraparound topologies.
[[nodiscard]] TurnCensus turn_census(const cdg::StateGraph& states);

}  // namespace wormnet::analysis
