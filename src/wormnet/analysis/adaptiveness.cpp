#include "wormnet/analysis/adaptiveness.hpp"

#include "wormnet/util/rng.hpp"

namespace wormnet::analysis {

AdaptivenessResult degree_of_adaptiveness(const Topology& topo,
                                          const RoutingFunction& routing,
                                          const AdaptivenessOptions& options) {
  AdaptivenessResult result;
  const NodeId n = topo.num_nodes();
  const std::size_t all_pairs = static_cast<std::size_t>(n) * (n - 1);

  double sum = 0.0;
  if (all_pairs <= options.pair_budget) {
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (s == d) continue;
        const double total = count_all_minimal_paths(topo, s, d);
        if (total <= 0) continue;
        sum += count_permitted_paths(topo, routing, s, d) / total;
        ++result.pairs;
      }
    }
  } else {
    result.sampled = true;
    util::Xoshiro256 rng(options.seed);
    while (result.pairs < options.pair_budget) {
      const NodeId s = static_cast<NodeId>(rng.below(n));
      NodeId d = static_cast<NodeId>(rng.below(n - 1));
      if (d >= s) ++d;
      const double total = count_all_minimal_paths(topo, s, d);
      if (total <= 0) continue;
      sum += count_permitted_paths(topo, routing, s, d) / total;
      ++result.pairs;
    }
  }
  if (result.pairs > 0) sum /= static_cast<double>(result.pairs);
  result.degree = sum;
  return result;
}

}  // namespace wormnet::analysis
