// Counting virtual-channel-labelled minimal paths.
//
// The count for (s, d) is the number of distinct channel sequences a packet
// may follow from s to d under the relation, restricted to hops that strictly
// decrease the remaining distance (so the recursion runs over a DAG and
// nonminimal relations are measured on their minimal-path subset).  Counts
// are doubles: the largest exact value needed (12-cube, 12! * 2^12 ~ 2e12)
// fits comfortably inside a double's 53-bit mantissa.
#pragma once

#include "wormnet/routing/routing_function.hpp"

namespace wormnet::analysis {

using routing::RoutingFunction;
using topology::NodeId;
using topology::Topology;

/// Minimal channel-labelled paths permitted by `routing` from src to dst.
[[nodiscard]] double count_permitted_paths(const Topology& topo,
                                           const RoutingFunction& routing,
                                           NodeId src, NodeId dst);

/// All minimal channel-labelled paths the topology offers (every productive
/// channel at every hop) — the denominator of the adaptiveness ratio.
[[nodiscard]] double count_all_minimal_paths(const Topology& topo, NodeId src,
                                             NodeId dst);

}  // namespace wormnet::analysis
