#include "wormnet/analysis/turns.hpp"

#include <stdexcept>

namespace wormnet::analysis {
namespace {

std::size_t direction_index(const topology::Channel& ch) {
  return ch.dim * 2 + (ch.dir == topology::Direction::kPos ? 0 : 1);
}

}  // namespace

const char* direction_name(std::size_t direction) {
  switch (direction) {
    case kXPos:
      return "X+";
    case kXNeg:
      return "X-";
    case kYPos:
      return "Y+";
    case kYNeg:
      return "Y-";
  }
  return "?";
}

TurnCensus turn_census(const cdg::StateGraph& states) {
  const auto& topo = states.topo();
  if (!topo.is_cube() || topo.num_dims() != 2) {
    throw std::invalid_argument("turn census is defined for 2-D meshes");
  }
  for (std::size_t d = 0; d < 2; ++d) {
    if (topo.cube().wraps[d]) {
      throw std::invalid_argument("turn census is defined for meshes");
    }
  }

  TurnCensus census;
  for (topology::NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    for (topology::ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, dest)) continue;
      const std::size_t from = direction_index(topo.channel(c));
      for (topology::ChannelId next : states.successors(c, dest)) {
        const std::size_t to = direction_index(topo.channel(next));
        if (topo.channel(c).dim == topo.channel(next).dim) continue;
        census.permitted[from][to] = true;
      }
    }
  }
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t to = 0; to < 4; ++to) {
      if (from / 2 == to / 2) continue;  // same dimension
      if (census.permitted[from][to]) {
        ++census.permitted_count;
      } else {
        ++census.prohibited_count;
      }
    }
  }
  return census;
}

}  // namespace wormnet::analysis
