// Saturation-point estimation.
//
// The standard scalar summary of an interconnect performance curve: the
// offered load at which the network stops accepting what is offered.  A run
// counts as saturated when the simulator flags it (measured packets stuck at
// drain end), when accepted throughput falls below `accept_fraction` of the
// offered load, or when average latency exceeds `latency_factor` times the
// zero-load latency.  Binary search over the injection rate.
#pragma once

#include "wormnet/routing/routing_function.hpp"
#include "wormnet/sim/simulator.hpp"

namespace wormnet::analysis {

struct SaturationOptions {
  double low = 0.02;
  double high = 1.0;
  int iterations = 6;           ///< binary-search refinement steps
  double accept_fraction = 0.85;
  double latency_factor = 6.0;
  sim::SimConfig base;          ///< pattern/seed/cycles template
};

struct SaturationResult {
  double saturation_rate = 0.0;   ///< flits/node/cycle
  double zero_load_latency = 0.0; ///< cycles, measured at `low`
  bool deadlocked = false;        ///< any probe deadlocked (disqualifying)
};

[[nodiscard]] SaturationResult find_saturation(
    const topology::Topology& topo, const routing::RoutingFunction& routing,
    const SaturationOptions& options = {});

}  // namespace wormnet::analysis
