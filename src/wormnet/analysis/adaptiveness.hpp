// Degree of adaptiveness (Glass & Ni): the ratio of minimal paths a routing
// algorithm permits to the total number of minimal paths, averaged over all
// source-destination pairs.  Paths are counted at virtual-channel resolution
// (two paths differing only in the VC taken on one hop are distinct), which
// is what distinguishes "fully adaptive" algorithms with different VC
// restrictions — the comparison the hypercube experiment (EXP-E) reproduces.
#pragma once

#include <cstdint>

#include "wormnet/analysis/path_count.hpp"

namespace wormnet::analysis {

struct AdaptivenessOptions {
  /// Exact averaging when num_pairs <= pair_budget; Monte-Carlo sampling of
  /// `pair_budget` pairs otherwise (deterministic given `seed`).
  std::size_t pair_budget = 20000;
  std::uint64_t seed = 42;
};

struct AdaptivenessResult {
  double degree = 0.0;       ///< average permitted/total ratio
  std::size_t pairs = 0;     ///< pairs evaluated
  bool sampled = false;      ///< Monte-Carlo fallback used
};

[[nodiscard]] AdaptivenessResult degree_of_adaptiveness(
    const Topology& topo, const RoutingFunction& routing,
    const AdaptivenessOptions& options = {});

}  // namespace wormnet::analysis
