// Deadlock / no-progress recovery policies.
//
// When the detector reports a wait-for cycle, or a packet makes no progress
// past its timeout, the simulator consults the RecoveryConfig:
//
//   halt        — stop the run and report the deadlock (the pre-ft status
//                 quo; byte-for-byte identical behaviour).
//   abort-retry — the victim packet aborts: it releases every channel it
//                 owns (flushing its flits), returns to its source, and
//                 re-injects after a deterministic exponential backoff.  A
//                 retry budget bounds the attempts; exhausting it drops the
//                 packet (counted, never silently).
//   drain       — graceful degradation: on the first recovery action the
//                 network stops accepting new packets, victims are dropped
//                 rather than retried, and in-flight traffic drains.
//
// All recovery choices are deterministic: victim selection is a pure
// function of the reported cycle, backoff is seeded by the attempt count
// alone, and retry re-injection preserves source-queue order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wormnet::ft {

enum class RecoveryPolicy : std::uint8_t { kHalt, kAbortRetry, kDrain };

[[nodiscard]] const char* to_string(RecoveryPolicy policy) noexcept;
[[nodiscard]] std::optional<RecoveryPolicy> recovery_from_string(
    std::string_view name) noexcept;

struct RecoveryConfig {
  RecoveryPolicy policy = RecoveryPolicy::kHalt;
  /// Aborts a packet may survive before it is dropped (abort-retry only).
  std::uint32_t retry_budget = 8;
  /// Cycles before the first re-injection; doubles per attempt.
  std::uint64_t backoff_base = 32;
  /// Ceiling of the exponential backoff.
  std::uint64_t backoff_cap = 1024;
  /// Per-packet no-progress threshold in cycles; 0 = inherit the global
  /// watchdog threshold (SimConfig::watchdog_cycles).  Only consulted when
  /// the policy is not halt.
  std::uint64_t packet_timeout = 0;

  /// Backoff before re-injection number `attempt` (1-based).
  [[nodiscard]] std::uint64_t backoff(std::uint32_t attempt) const {
    std::uint64_t delay = backoff_base;
    for (std::uint32_t i = 1; i < attempt && delay < backoff_cap; ++i) {
      delay *= 2;
    }
    return std::min(delay, backoff_cap);
  }
};

}  // namespace wormnet::ft
