#include "wormnet/ft/recovery.hpp"

namespace wormnet::ft {

const char* to_string(RecoveryPolicy policy) noexcept {
  switch (policy) {
    case RecoveryPolicy::kHalt: return "halt";
    case RecoveryPolicy::kAbortRetry: return "abort-retry";
    case RecoveryPolicy::kDrain: return "drain";
  }
  return "?";
}

std::optional<RecoveryPolicy> recovery_from_string(
    std::string_view name) noexcept {
  if (name == "halt") return RecoveryPolicy::kHalt;
  if (name == "abort-retry" || name == "abort_retry" || name == "retry") {
    return RecoveryPolicy::kAbortRetry;
  }
  if (name == "drain") return RecoveryPolicy::kDrain;
  return std::nullopt;
}

}  // namespace wormnet::ft
