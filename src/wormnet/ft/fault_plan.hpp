// Deterministic fault-injection plans for the wormhole simulator.
//
// A FaultPlan is a symbolic schedule of channel/link kill and repair events
// ("at cycle 250, the physical link 5->6 dies; at cycle 800 it comes back"),
// plus seeded random campaigns.  Plans are parsed from a compact text form
// (so they can ride in sweep grids and CLI flags), then *compiled* against a
// concrete topology into per-cycle channel-id batches the Simulator applies
// between cycles.  Compilation is where every error surfaces: unknown nodes,
// non-adjacent link pairs, and out-of-range channel ids all throw before any
// simulation starts.
//
// Text grammar ('+'-joined events; ',' and ';' are reserved by the sweep
// grid syntax, so plans embed cleanly as grid axis values):
//
//   none                      the empty plan (placeholder axis value)
//   kill:SRC-DST@CYCLE        all VCs of physical link SRC->DST die
//   repair:SRC-DST@CYCLE      ... and come back
//   killch:C@CYCLE            one virtual channel (by ChannelId) dies
//   repairch:C@CYCLE          ... and comes back
//   rand:N/SEED@CYCLE         N distinct random physical links die (the
//                             choice is a pure function of SEED)
//
// Example: "kill:5-6@250+repair:5-6@800+rand:2/7@1200".
//
// Everything here is deterministic: the same plan text compiled against the
// same topology yields the same steps, and random campaigns draw from their
// own seed, never from the simulation RNG.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wormnet/topology/topology.hpp"

namespace wormnet::ft {

using topology::ChannelId;
using topology::NodeId;
using topology::Topology;

/// One symbolic plan event (pre-compilation).
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kLinkDown,     ///< all VCs of the physical link src -> dst die
    kLinkUp,       ///< ... are repaired
    kChannelDown,  ///< one virtual channel dies
    kChannelUp,    ///< ... is repaired
    kRandomLinks,  ///< `count` distinct random physical links die
  };
  Kind kind = Kind::kLinkDown;
  std::uint64_t cycle = 0;
  NodeId src = 0;  ///< link events
  NodeId dst = 0;
  ChannelId channel = topology::kInvalidChannel;  ///< channel events
  std::size_t count = 0;    ///< random campaigns
  std::uint64_t seed = 1;   ///< random campaigns
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  /// Round-trips through parse_fault_plan ("none" for the empty plan).
  [[nodiscard]] std::string to_string() const;
};

/// Parses the text grammar above.  "none", "" and whitespace-only all mean
/// the empty plan.  Throws std::invalid_argument on malformed input.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& text);

/// All events of one cycle, resolved to channel ids.  Within a step, downs
/// apply before ups (a kill+repair of the same channel at the same cycle is
/// a repair).
struct CompiledStep {
  std::uint64_t cycle = 0;
  std::vector<ChannelId> down;
  std::vector<ChannelId> up;
};

/// A plan bound to a topology: steps sorted by strictly ascending cycle.
struct CompiledFaultPlan {
  std::size_t num_channels = 0;  ///< of the topology compiled against
  std::vector<CompiledStep> steps;

  [[nodiscard]] bool empty() const noexcept { return steps.empty(); }

  /// Cumulative fault masks, one per epoch: masks[0] is the pristine
  /// network, masks[k] the state after steps[k-1].  size() == steps + 1.
  /// This is what per-epoch re-verification certifies.
  [[nodiscard]] std::vector<std::vector<bool>> epoch_masks() const;
};

/// Resolves `plan` against `topo`.  Throws std::invalid_argument when a
/// node id is out of range, a link's endpoints are not adjacent, a channel
/// id does not exist, or a random campaign asks for zero links.
[[nodiscard]] CompiledFaultPlan compile(const FaultPlan& plan,
                                        const Topology& topo);

/// Renders a fault mask as lowercase hex (4 bits per character, channel 0 in
/// the least-significant bit of the last character) — the AnalysisCache key
/// suffix for degraded-relation verdicts.
[[nodiscard]] std::string mask_to_hex(const std::vector<bool>& mask);

/// Inverse of mask_to_hex for a network of `num_channels` channels.  Used to
/// reconstruct the degraded relation a persisted certificate speaks about.
/// Throws std::invalid_argument on non-hex input or bits beyond the network.
[[nodiscard]] std::vector<bool> mask_from_hex(const std::string& hex,
                                              std::size_t num_channels);

}  // namespace wormnet::ft
