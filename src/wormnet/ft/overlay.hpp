// The live fault mask of a running simulation.
//
// FaultOverlay owns the mutable per-channel fault vector a simulation routes
// around: the Simulator applies CompiledSteps between cycles, and a
// routing::DynamicFaultRouting wrapper (plus the allocator's own filter)
// reads the mask by reference — so every consumer sees the new epoch the
// cycle after an event fires, with no rebuild of the routing function.
//
// apply() reports the channels that actually changed state; killing a dead
// channel (e.g. a random campaign overlapping a scheduled kill) is idempotent
// and contributes nothing to the delta, which keeps the fault/repair event
// counts honest.
#pragma once

#include <cstdint>
#include <vector>

#include "wormnet/ft/fault_plan.hpp"

namespace wormnet::ft {

class FaultOverlay {
 public:
  explicit FaultOverlay(std::size_t num_channels)
      : mask_(num_channels, false) {}

  /// The live mask; the reference stays valid (and its address stable) for
  /// the overlay's lifetime, so borrowers may hold onto it.
  [[nodiscard]] const std::vector<bool>& mask() const noexcept {
    return mask_;
  }
  [[nodiscard]] bool is_faulty(ChannelId c) const { return mask_[c]; }
  [[nodiscard]] std::size_t fault_count() const noexcept { return count_; }
  /// Steps applied so far; epoch e uses masks()[e] of the compiled plan.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  struct Delta {
    std::vector<ChannelId> downed;    ///< transitioned healthy -> faulty
    std::vector<ChannelId> repaired;  ///< transitioned faulty -> healthy
  };

  /// Applies one compiled step (downs first, then ups, matching
  /// CompiledFaultPlan::epoch_masks) and advances the epoch.
  Delta apply(const CompiledStep& step) {
    Delta delta;
    for (ChannelId c : step.down) {
      if (!mask_[c]) {
        mask_[c] = true;
        ++count_;
        delta.downed.push_back(c);
      }
    }
    for (ChannelId c : step.up) {
      if (mask_[c]) {
        mask_[c] = false;
        --count_;
        delta.repaired.push_back(c);
      }
    }
    ++epoch_;
    return delta;
  }

 private:
  std::vector<bool> mask_;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace wormnet::ft
