#include "wormnet/ft/fault_plan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "wormnet/util/rng.hpp"

namespace wormnet::ft {
namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("fault plan: " + what);
}

std::string trim(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return {};
  std::size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    bad("bad " + what + " '" + text + "'");
  }
}

FaultEvent parse_event(const std::string& text) {
  const auto at = text.rfind('@');
  if (at == std::string::npos) bad("event '" + text + "' has no @CYCLE");
  const auto colon = text.find(':');
  if (colon == std::string::npos || colon > at) {
    bad("event '" + text + "' is not OP:ARGS@CYCLE");
  }
  const std::string op = text.substr(0, colon);
  const std::string args = text.substr(colon + 1, at - colon - 1);
  FaultEvent ev;
  ev.cycle = parse_u64(text.substr(at + 1), "cycle");
  if (op == "kill" || op == "repair") {
    const auto dash = args.find('-');
    if (dash == std::string::npos) {
      bad("link event '" + text + "' needs SRC-DST");
    }
    ev.kind = op == "kill" ? FaultEvent::Kind::kLinkDown
                           : FaultEvent::Kind::kLinkUp;
    ev.src = static_cast<NodeId>(parse_u64(args.substr(0, dash), "node"));
    ev.dst = static_cast<NodeId>(parse_u64(args.substr(dash + 1), "node"));
  } else if (op == "killch" || op == "repairch") {
    ev.kind = op == "killch" ? FaultEvent::Kind::kChannelDown
                             : FaultEvent::Kind::kChannelUp;
    ev.channel = static_cast<ChannelId>(parse_u64(args, "channel"));
  } else if (op == "rand") {
    ev.kind = FaultEvent::Kind::kRandomLinks;
    const auto slash = args.find('/');
    if (slash == std::string::npos) {
      ev.count = parse_u64(args, "count");
    } else {
      ev.count = parse_u64(args.substr(0, slash), "count");
      ev.seed = parse_u64(args.substr(slash + 1), "seed");
    }
    if (ev.count == 0) bad("random campaign with count 0 in '" + text + "'");
  } else {
    bad("unknown op '" + op + "'");
  }
  return ev;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, '+')) {
    part = trim(part);
    if (part.empty() || part == "none") continue;
    plan.events.push_back(parse_event(part));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  if (events.empty()) return "none";
  std::ostringstream os;
  bool first = true;
  for (const FaultEvent& ev : events) {
    if (!first) os << '+';
    first = false;
    switch (ev.kind) {
      case FaultEvent::Kind::kLinkDown:
        os << "kill:" << ev.src << '-' << ev.dst;
        break;
      case FaultEvent::Kind::kLinkUp:
        os << "repair:" << ev.src << '-' << ev.dst;
        break;
      case FaultEvent::Kind::kChannelDown:
        os << "killch:" << ev.channel;
        break;
      case FaultEvent::Kind::kChannelUp:
        os << "repairch:" << ev.channel;
        break;
      case FaultEvent::Kind::kRandomLinks:
        os << "rand:" << ev.count << '/' << ev.seed;
        break;
    }
    os << '@' << ev.cycle;
  }
  return os.str();
}

CompiledFaultPlan compile(const FaultPlan& plan, const Topology& topo) {
  CompiledFaultPlan out;
  out.num_channels = topo.num_channels();

  auto link_channels = [&](NodeId src, NodeId dst) {
    if (src >= topo.num_nodes() || dst >= topo.num_nodes()) {
      bad("node out of range in link " + std::to_string(src) + "-" +
          std::to_string(dst));
    }
    std::vector<ChannelId> chs = topo.channels_between(src, dst);
    if (chs.empty()) {
      bad("nodes " + std::to_string(src) + " and " + std::to_string(dst) +
          " are not adjacent");
    }
    return chs;
  };

  // steps keyed by cycle; within a cycle, plan order decides list order.
  std::map<std::uint64_t, CompiledStep> steps;
  for (const FaultEvent& ev : plan.events) {
    CompiledStep& step = steps[ev.cycle];
    step.cycle = ev.cycle;
    switch (ev.kind) {
      case FaultEvent::Kind::kLinkDown:
      case FaultEvent::Kind::kLinkUp: {
        auto& list = ev.kind == FaultEvent::Kind::kLinkDown ? step.down
                                                            : step.up;
        for (ChannelId c : link_channels(ev.src, ev.dst)) list.push_back(c);
        break;
      }
      case FaultEvent::Kind::kChannelDown:
      case FaultEvent::Kind::kChannelUp: {
        if (ev.channel >= topo.num_channels()) {
          bad("channel " + std::to_string(ev.channel) + " out of range");
        }
        auto& list = ev.kind == FaultEvent::Kind::kChannelDown ? step.down
                                                               : step.up;
        list.push_back(ev.channel);
        break;
      }
      case FaultEvent::Kind::kRandomLinks: {
        // Same pool construction as routing::random_link_faults: distinct
        // physical links in (src, dst) order, partial Fisher-Yates from the
        // campaign's own seed.
        std::set<std::pair<NodeId, NodeId>> all_links;
        for (ChannelId c = 0; c < topo.num_channels(); ++c) {
          const auto& ch = topo.channel(c);
          all_links.emplace(ch.src, ch.dst);
        }
        std::vector<std::pair<NodeId, NodeId>> pool(all_links.begin(),
                                                    all_links.end());
        util::Xoshiro256 rng(ev.seed);
        const std::size_t picks = std::min(ev.count, pool.size());
        for (std::size_t i = 0; i < picks; ++i) {
          const std::size_t pick = i + rng.below(pool.size() - i);
          std::swap(pool[i], pool[pick]);
          for (ChannelId c :
               topo.channels_between(pool[i].first, pool[i].second)) {
            step.down.push_back(c);
          }
        }
        break;
      }
    }
  }
  out.steps.reserve(steps.size());
  for (auto& [cycle, step] : steps) out.steps.push_back(std::move(step));
  return out;
}

std::vector<std::vector<bool>> CompiledFaultPlan::epoch_masks() const {
  std::vector<std::vector<bool>> masks;
  std::vector<bool> mask(num_channels, false);
  masks.push_back(mask);
  for (const CompiledStep& step : steps) {
    for (ChannelId c : step.down) mask[c] = true;
    for (ChannelId c : step.up) mask[c] = false;
    masks.push_back(mask);
  }
  return masks;
}

std::string mask_to_hex(const std::vector<bool>& mask) {
  static const char* kDigits = "0123456789abcdef";
  const std::size_t chars = (mask.size() + 3) / 4;
  std::string out(chars, '0');
  for (std::size_t c = 0; c < mask.size(); ++c) {
    if (!mask[c]) continue;
    const std::size_t nibble = chars - 1 - c / 4;
    const char digit = out[nibble];
    const int value = digit <= '9' ? digit - '0' : digit - 'a' + 10;
    out[nibble] = kDigits[value | (1 << (c % 4))];
  }
  return out;
}

std::vector<bool> mask_from_hex(const std::string& hex,
                                std::size_t num_channels) {
  std::vector<bool> mask(num_channels, false);
  for (std::size_t i = 0; i < hex.size(); ++i) {
    const char digit = hex[hex.size() - 1 - i];
    int value = 0;
    if (digit >= '0' && digit <= '9') {
      value = digit - '0';
    } else if (digit >= 'a' && digit <= 'f') {
      value = digit - 'a' + 10;
    } else {
      throw std::invalid_argument("mask_from_hex: non-hex character in " +
                                  hex);
    }
    for (int bit = 0; bit < 4; ++bit) {
      if ((value & (1 << bit)) == 0) continue;
      const std::size_t c = i * 4 + static_cast<std::size_t>(bit);
      if (c >= num_channels) {
        throw std::invalid_argument("mask_from_hex: bit " + std::to_string(c) +
                                    " beyond " +
                                    std::to_string(num_channels) +
                                    " channels");
      }
      mask[c] = true;
    }
  }
  return mask;
}

}  // namespace wormnet::ft
