#include "wormnet/lint/engine.hpp"

#include <chrono>
#include <stdexcept>

#include "wormnet/obs/probe.hpp"

namespace wormnet::lint {

std::size_t LintResult::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

bool LintResult::clean(Severity at_least) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity >= at_least) return false;
  }
  return true;
}

LintResult run_lint(const Topology& topo, const RoutingFunction& routing,
                    const LintOptions& options) {
  std::vector<const Rule*> selected;
  if (options.rules.empty()) {
    for (const Rule& rule : all_rules()) selected.push_back(&rule);
  } else {
    for (const std::string& key : options.rules) {
      const Rule* rule = find_rule(key);
      if (rule == nullptr) {
        throw std::invalid_argument("unknown lint rule: " + key);
      }
      selected.push_back(rule);
    }
  }

  LintContext ctx(topo, routing, options.duato_options);
  reconfig::CompiledTransitionPlan transition;
  if (!options.reconfig_plan.empty() && options.reconfig_plan != "none") {
    if (options.reconfig_base.empty()) {
      throw std::invalid_argument(
          "lint: reconfig_plan requires reconfig_base (the registry name of "
          "the base relation)");
    }
    transition =
        reconfig::compile(reconfig::parse_transition_plan(options.reconfig_plan),
                          topo, options.reconfig_base);
    ctx.set_transition(&transition);
  }
  if (!options.reconfig_target.empty() && options.reconfig_target != "none") {
    if (options.reconfig_base.empty()) {
      throw std::invalid_argument(
          "lint: reconfig_target requires reconfig_base (the registry name "
          "of the base relation)");
    }
    ctx.set_staging(options.reconfig_base, options.reconfig_target,
                    options.planner_budget);
  }
  LintResult result;
  for (const Rule* rule : selected) {
    const std::size_t before = result.diagnostics.size();
    const auto start = std::chrono::steady_clock::now();
    rule->run(ctx, result.diagnostics);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    RuleTiming timing;
    timing.rule = rule;
    timing.seconds = elapsed.count();
    timing.emitted = result.diagnostics.size() - before;
    result.timings.push_back(timing);
    if (obs::CheckerStats* probe = obs::checker_probe()) {
      probe->add_phase((std::string("lint/") + rule->id).c_str(),
                       timing.seconds);
    }
    if (options.profiler != nullptr) {
      options.profiler->add(std::string("lint.") + rule->id,
                            timing.seconds * 1000.0);
    }
  }
  return result;
}

}  // namespace wormnet::lint
