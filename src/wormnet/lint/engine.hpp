// The lint driver: runs a (filtered) set of registry rules over one
// (topology, routing) pair, accumulating diagnostics and per-rule wall time.
//
// Analyses are shared between rules through LintContext's lazy caches — the
// state graph is built once, the subfunction search runs once — so running
// all ten rules costs barely more than the most expensive one.  When an
// obs::CheckerStats probe is installed, each rule additionally reports its
// wall time as phase "lint/WN0xx".
#pragma once

#include <string>
#include <vector>

#include "wormnet/lint/context.hpp"
#include "wormnet/lint/diagnostic.hpp"
#include "wormnet/lint/rule.hpp"
#include "wormnet/obs/profiler.hpp"

namespace wormnet::lint {

struct LintOptions {
  /// Rule ids or names to run; empty = the full catalog.
  std::vector<std::string> rules;
  /// Budget for the subfunction search behind WN002.
  cdg::SearchOptions duato_options = LintContext::default_search_options();
  /// Declared reconfiguration transition (reconfig::parse_transition_plan
  /// syntax; "" or "none" = no transition).  When set, WN024 re-verifies
  /// every union epoch of the plan compiled against `reconfig_base`.
  std::string reconfig_plan;
  /// Registry name of the transition's base relation.  Required alongside
  /// reconfig_plan because RoutingFunction::name() is a description, not a
  /// registry key, so the engine cannot recover it from `routing` alone.
  std::string reconfig_base;
  /// Declared reconfiguration *target* (a registry name, may carry a
  /// %HEXMASK restriction; "" or "none" = none).  When set, WN025 runs the
  /// certified staging-order planner from `reconfig_base` to it and reports
  /// if no certified multi-stage path exists within `planner_budget`.
  std::string reconfig_target;
  /// Certifier-call budget for the WN025 planner search (0 = planner
  /// default).  Plans are budget-monotone, so raising this only ever turns
  /// a finding into silence, never the reverse.
  std::size_t planner_budget = 0;
  /// Borrowed self-profiling registry (null = off): each rule's wall time
  /// lands as one "lint.WN0xx" sample.
  obs::Profiler* profiler = nullptr;
};

struct RuleTiming {
  const Rule* rule = nullptr;
  double seconds = 0.0;
  std::size_t emitted = 0;  ///< diagnostics this rule produced
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;
  std::vector<RuleTiming> timings;  ///< one entry per rule run, in id order

  [[nodiscard]] std::size_t count(Severity severity) const;
  /// True when nothing at or above `at_least` was emitted.
  [[nodiscard]] bool clean(Severity at_least = Severity::kInfo) const;
};

/// Runs the selected rules; throws std::invalid_argument on an unknown rule
/// id/name in `options.rules`.
[[nodiscard]] LintResult run_lint(const Topology& topo,
                                  const RoutingFunction& routing,
                                  const LintOptions& options = {});

}  // namespace wormnet::lint
