#include "wormnet/lint/context.hpp"

#include "wormnet/core/certify.hpp"

namespace wormnet::lint {

cdg::SearchOptions LintContext::default_search_options() {
  cdg::SearchOptions options;
  options.exhaustive_channel_limit = 16;
  return options;
}

LintContext::LintContext(const Topology& topo, const RoutingFunction& routing,
                         cdg::SearchOptions duato_options)
    : topo_(&topo),
      routing_(&routing),
      duato_(dynamic_cast<const routing::DuatoAdaptive*>(&routing)),
      duato_options_(std::move(duato_options)) {}

const cdg::StateGraph& LintContext::states() {
  if (!states_) states_.emplace(*topo_, *routing_);
  return *states_;
}

const cdg::StateGraph& LintContext::escape_states() {
  if (!escape_states_) escape_states_.emplace(*topo_, duato_->escape());
  return *escape_states_;
}

const cdg::SearchResult& LintContext::duato_search() {
  if (!search_) {
    cdg::SearchOptions options = duato_options_;
    if (duato_ != nullptr && options.seeded_candidates.empty()) {
      // The designated escape layer is the canonical candidate: seed it so
      // the search reports it by name instead of rediscovering it.
      std::vector<bool> c1(topo_->num_channels(), false);
      for (topology::ChannelId c = 0; c < topo_->num_channels(); ++c) {
        if (topo_->channel(c).vc < duato_->adaptive_vc_lo()) c1[c] = true;
      }
      options.seeded_candidates.emplace_back(std::move(c1), "escape-layer");
    }
    search_ = cdg::search(states(), options);
  }
  return *search_;
}

const std::optional<audit::Certificate>& LintContext::certificate() {
  if (!certificate_emitted_) {
    certificate_emitted_ = true;
    certificate_ = core::certify_duato(states(), duato_search());
  }
  return certificate_;
}

}  // namespace wormnet::lint
