// Structured diagnostics for wormnet-lint, the compiler-style static
// analyzer over (Topology, RoutingFunction) pairs.
//
// Every finding is a `Diagnostic`: a stable rule id (WN001, WN002, ...), a
// severity, a human message, and a `Location` naming the offending channels,
// nodes, or dependency cycle as a concrete *witness* — the same witnesses the
// refactored checkers (duato_checker, cwg, states) now return, so a verdict
// is always accompanied by its "why".  Renderers (render.hpp) turn the same
// diagnostics into GCC-style text, JSON lines, or SARIF 2.1.0.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wormnet/cdg/extended_cdg.hpp"
#include "wormnet/topology/topology.hpp"

namespace wormnet::lint {

using topology::ChannelId;
using topology::NodeId;
using topology::Topology;

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

[[nodiscard]] const char* to_string(Severity severity);

/// SARIF `level` value for a severity ("note" / "warning" / "error").
[[nodiscard]] const char* sarif_level(Severity severity);

/// One hop of a dependency-cycle witness, classified like the extended CDG
/// classifies its edges (direct / indirect / direct-cross / indirect-cross).
struct CycleEdge {
  ChannelId from = topology::kInvalidChannel;
  ChannelId to = topology::kInvalidChannel;
  cdg::DepKind kind = cdg::DepKind::kDirect;
};

/// What a diagnostic points at.  All members optional; rules fill in
/// whichever witness shape they have (a channel list, a node pair, a cycle).
struct Location {
  std::vector<ChannelId> channels;  ///< offending channels
  std::vector<NodeId> nodes;        ///< offending nodes (e.g. a (src,dst) pair)
  std::vector<CycleEdge> cycle;     ///< dependency cycle, edge by edge
  std::optional<NodeId> dest;       ///< destination context, when relevant

  [[nodiscard]] bool empty() const {
    return channels.empty() && nodes.empty() && cycle.empty() &&
           !dest.has_value();
  }

  /// Compact human rendering, e.g.
  ///   "cycle: cA1 -(indirect)-> cL2 -(direct)-> cA1 [dest 0]".
  [[nodiscard]] std::string describe(const Topology& topo) const;
};

struct Diagnostic {
  std::string rule_id;  ///< stable id, e.g. "WN002"
  Severity severity = Severity::kWarning;
  std::string message;
  Location location;
};

}  // namespace wormnet::lint
