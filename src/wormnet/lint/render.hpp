// Diagnostic renderers: human (GCC-style, one line per finding plus witness
// notes), JSON lines (one object per diagnostic, machine-greppable), and
// SARIF 2.1.0 (one run, full rule catalog in the tool driver, results across
// every linted configuration — uploadable to code-scanning UIs).
//
// All three take a list of LintUnits so a single report can span many
// (topology, routing) configurations (--all-examples); witnesses are
// rendered with channel *names*, ids stay available in the structured forms.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "wormnet/lint/engine.hpp"

namespace wormnet::lint {

/// One linted configuration: the subject label names it in every renderer.
struct LintUnit {
  std::string subject;  ///< e.g. "mesh:4x4:2 duato-mesh"
  const Topology* topo = nullptr;
  LintResult result;
};

void render_human(std::ostream& os, const std::vector<LintUnit>& units,
                  bool show_timings = false);
void render_jsonl(std::ostream& os, const std::vector<LintUnit>& units);
void render_sarif(std::ostream& os, const std::vector<LintUnit>& units);

}  // namespace wormnet::lint
