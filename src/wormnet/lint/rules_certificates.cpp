// Proof-carrying-certificate rules (DESIGN 3.10):
//
//   WN021 certificate-audit-mismatch     the Duato verdict's certificate is
//                                        refuted by the independent auditor —
//                                        the checker emitted evidence the
//                                        relation does not support
//   WN022 certificate-roundtrip-unstable the certificate does not survive a
//                                        JSON serialize/parse/serialize
//                                        round-trip byte-exactly
//   WN023 certificate-missing            the Duato verdict is decisive but
//                                        emission produced no certificate,
//                                        so the verdict cannot be
//                                        independently re-validated
//
// All three run the lint pipeline's own emitted certificate (LintContext
// memoizes one core::certify_duato call per pair).  WN021/WN022 firing on a
// registry example is release-blocking: it means either the checker or the
// auditor is wrong about the paper's condition.
#include <sstream>

#include "wormnet/audit/check.hpp"
#include "wormnet/cdg/cdg_builder.hpp"
#include "wormnet/lint/rules_internal.hpp"

namespace wormnet::lint::rules {
namespace {

/// The exact scope of the necessary-and-sufficient condition (mirrors the
/// verifier's gate): input-independent, wait-on-any, coherent (via minimal).
bool condition_in_scope(LintContext& ctx) {
  const routing::RoutingFunction& routing = ctx.routing();
  return routing.form() == routing::RelationForm::kNodeDest &&
         routing.wait_mode() == routing::WaitMode::kAnyOf &&
         cdg::relation_minimal(ctx.states());
}

}  // namespace

void certificate_audit_mismatch(LintContext& ctx,
                                std::vector<Diagnostic>& out) {
  const std::optional<audit::Certificate>& cert = ctx.certificate();
  if (!cert.has_value()) return;
  const audit::AuditResult audit =
      audit::check(ctx.topo(), ctx.routing(), *cert);
  if (audit.ok()) return;

  Diagnostic d;
  d.rule_id = "WN021";
  d.severity = Severity::kError;
  std::ostringstream os;
  os << "the " << audit::to_string(cert->kind)
     << " certificate emitted for this pair is refuted by the independent "
        "auditor ["
     << audit::to_string(audit.code) << "]: " << audit.detail
     << " — the checker and the relation disagree; do not trust the verdict";
  d.message = os.str();
  out.push_back(std::move(d));
}

void certificate_roundtrip_unstable(LintContext& ctx,
                                    std::vector<Diagnostic>& out) {
  const std::optional<audit::Certificate>& cert = ctx.certificate();
  if (!cert.has_value()) return;
  const std::string json = cert->to_json();
  const audit::ParseResult parsed = audit::parse_certificate(json);

  std::ostringstream os;
  if (!parsed.certificate.has_value()) {
    os << "the emitted certificate does not parse back: " << parsed.error;
  } else if (*parsed.certificate != *cert) {
    os << "the emitted certificate parses back to a different value";
  } else if (parsed.certificate->to_json() != json) {
    os << "re-serializing the parsed certificate is not byte-identical";
  } else {
    return;
  }
  os << " — persisted certificates would drift from the in-memory evidence";

  Diagnostic d;
  d.rule_id = "WN022";
  d.severity = Severity::kError;
  d.message = os.str();
  out.push_back(std::move(d));
}

void certificate_missing(LintContext& ctx, std::vector<Diagnostic>& out) {
  const cdg::SearchResult& search = ctx.duato_search();
  // Decisive Duato verdicts: a subfunction was found, or the exhaustive
  // search refuted every subset for an in-scope relation.  Budget-limited
  // and out-of-scope outcomes are kUnknown — no certificate is expected.
  const bool decisive =
      search.found ||
      (search.exhaustive_complete && condition_in_scope(ctx));
  if (!decisive) return;
  if (ctx.certificate().has_value()) return;

  Diagnostic d;
  d.rule_id = "WN023";
  d.severity = Severity::kWarning;
  std::ostringstream os;
  os << "the Duato verdict is decisive ("
     << (search.found ? "subfunction found" : "exhaustively refuted")
     << ") but certificate emission produced nothing — the verdict cannot "
        "be independently re-validated by wormnet::audit";
  d.message = os.str();
  out.push_back(std::move(d));
}

}  // namespace wormnet::lint::rules
