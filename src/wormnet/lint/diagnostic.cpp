#include "wormnet/lint/diagnostic.hpp"

#include <sstream>

namespace wormnet::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* sarif_level(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "none";
}

std::string Location::describe(const Topology& topo) const {
  std::ostringstream os;
  bool wrote = false;
  if (!cycle.empty()) {
    os << "cycle: ";
    for (const CycleEdge& edge : cycle) {
      os << topo.channel_name(edge.from) << " -(" << cdg::to_string(edge.kind)
         << ")-> ";
    }
    os << topo.channel_name(cycle.front().from);
    wrote = true;
  }
  if (!channels.empty()) {
    if (wrote) os << "; ";
    os << "channels: ";
    for (std::size_t i = 0; i < channels.size(); ++i) {
      if (i) os << ", ";
      os << topo.channel_name(channels[i]);
    }
    wrote = true;
  }
  if (!nodes.empty()) {
    if (wrote) os << "; ";
    os << "nodes: ";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i) os << ", ";
      os << nodes[i];
    }
    wrote = true;
  }
  if (dest) {
    if (wrote) os << " ";
    os << "[dest " << *dest << "]";
  }
  return os.str();
}

}  // namespace wormnet::lint
