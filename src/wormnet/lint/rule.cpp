#include "wormnet/lint/rule.hpp"

#include "wormnet/lint/rules_internal.hpp"

namespace wormnet::lint {

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"WN001", "routing-not-connected", Severity::kError,
       "some source cannot deliver to some destination under the relation",
       rules::routing_not_connected},
      {"WN002", "extended-cdg-cyclic", Severity::kError,
       "no connected routing subfunction with an acyclic extended channel "
       "dependency graph was found",
       rules::extended_cdg_cyclic},
      {"WN003", "subfunction-not-connected", Severity::kError,
       "the designated escape subfunction fails connectivity or "
       "escape-everywhere",
       rules::subfunction_not_connected},
      {"WN004", "incoherent-routing", Severity::kWarning,
       "the relation permits a closed walk (messages can revisit nodes)",
       rules::incoherent_routing},
      {"WN005", "not-wait-connected", Severity::kError,
       "a blocked state has no channel it is allowed to wait on",
       rules::not_wait_connected},
      {"WN006", "wait-specific-true-cycle", Severity::kError,
       "wait-specific relation has a True Cycle (realizable deadlock "
       "configuration)",
       rules::wait_specific_true_cycle},
      {"WN010", "unreachable-channel", Severity::kWarning,
       "channels that no route ever uses (dead buffer resources)",
       rules::unreachable_channel},
      {"WN011", "dateline-misconfigured", Severity::kWarning,
       "a wraparound dimension keeps a dependency cycle among its own "
       "channels",
       rules::dateline_misconfigured},
      {"WN012", "adaptivity-degenerate", Severity::kInfo,
       "the adaptive layer never supplies a channel; the relation collapses "
       "to its escape layer",
       rules::adaptivity_degenerate},
      {"WN020", "vc-count-sanity", Severity::kWarning,
       "virtual-channel budget cannot support the topology/routing "
       "combination",
       rules::vc_count_sanity},
      {"WN021", "certificate-audit-mismatch", Severity::kError,
       "the verdict's proof-carrying certificate is refuted by the "
       "independent auditor",
       rules::certificate_audit_mismatch},
      {"WN022", "certificate-roundtrip-unstable", Severity::kError,
       "the certificate does not survive a JSON round-trip byte-exactly",
       rules::certificate_roundtrip_unstable},
      {"WN023", "certificate-missing", Severity::kWarning,
       "the Duato verdict is decisive but carries no certificate for "
       "independent re-validation",
       rules::certificate_missing},
      {"WN024", "transition-union-unverified", Severity::kError,
       "a declared reconfiguration transition has a union epoch that fails "
       "Duato re-verification",
       rules::transition_union_unverified},
      {"WN025", "no-certified-staging-order", Severity::kError,
       "the staging-order planner found no certified multi-stage path from "
       "the base relation to the declared reconfiguration target",
       rules::no_certified_staging_order},
  };
  return kRules;
}

const Rule* find_rule(std::string_view id_or_name) {
  for (const Rule& rule : all_rules()) {
    if (id_or_name == rule.id || id_or_name == rule.name) return &rule;
  }
  return nullptr;
}

}  // namespace wormnet::lint
