// Shared, lazily-computed analysis state for one lint run.
//
// Several rules need the same expensive artifacts — the reachable-state graph
// and the Duato subfunction search above all.  The context builds each at
// most once per (topology, routing) pair and hands out references, so adding
// a rule never adds a redundant fixpoint computation.  When the routing is a
// DuatoAdaptive construction the context also exposes its escape layer and
// seeds the subfunction search with it (the canonical candidate).
#pragma once

#include <memory>
#include <optional>

#include "wormnet/audit/certificate.hpp"
#include "wormnet/cdg/duato_checker.hpp"
#include "wormnet/cdg/states.hpp"
#include "wormnet/reconfig/transition_plan.hpp"
#include "wormnet/routing/duato_adaptive.hpp"

namespace wormnet::lint {

using routing::RoutingFunction;
using topology::Topology;

class LintContext {
 public:
  LintContext(const Topology& topo, const RoutingFunction& routing,
              cdg::SearchOptions duato_options = default_search_options());

  /// Default subfunction-search budget for linting: like the checker default
  /// but with the exhaustive stage stretched to 16 channels, so small
  /// networks (e.g. ring:8) get a *proof* of "no subfunction exists" instead
  /// of a budget artifact.
  [[nodiscard]] static cdg::SearchOptions default_search_options();

  [[nodiscard]] const Topology& topo() const noexcept { return *topo_; }
  [[nodiscard]] const RoutingFunction& routing() const noexcept {
    return *routing_;
  }

  /// Reachable states of the full relation (built on first use).
  [[nodiscard]] const cdg::StateGraph& states();

  /// Duato subfunction search over the full relation (run on first use,
  /// seeded with the escape layer when the routing is a DuatoAdaptive).
  [[nodiscard]] const cdg::SearchResult& duato_search();

  /// The routing as a DuatoAdaptive construction, or nullptr when it is not
  /// one.  Rules about escape layers / adaptivity check this first.
  [[nodiscard]] const routing::DuatoAdaptive* duato_layers() const {
    return duato_;
  }

  /// Reachable states of the escape layer alone (DuatoAdaptive only; built
  /// on first use).  Precondition: duato_layers() != nullptr.
  [[nodiscard]] const cdg::StateGraph& escape_states();

  /// Proof-carrying certificate for the Duato search outcome (emitted on
  /// first use via core::certify_duato; shared by the WN021–WN023 rules).
  /// nullopt when the verdict is not decisive or emission failed — the
  /// latter is exactly what WN023 reports.
  [[nodiscard]] const std::optional<audit::Certificate>& certificate();

  /// Declared reconfiguration transition for this run (borrowed, nullable;
  /// installed by the engine from LintOptions::reconfig_plan).  WN024
  /// re-verifies its union epochs.
  void set_transition(const reconfig::CompiledTransitionPlan* plan) {
    transition_ = plan;
  }
  [[nodiscard]] const reconfig::CompiledTransitionPlan* transition() const {
    return transition_;
  }

  /// Declared reconfiguration *target* for this run (a registry name, may
  /// carry a %HEXMASK restriction; installed by the engine from
  /// LintOptions::reconfig_target).  WN025 runs the certified staging-order
  /// planner from `staging_base` towards it.  Empty target = not declared.
  void set_staging(std::string base, std::string target, std::size_t budget) {
    staging_base_ = std::move(base);
    staging_target_ = std::move(target);
    planner_budget_ = budget;
  }
  [[nodiscard]] const std::string& staging_base() const {
    return staging_base_;
  }
  [[nodiscard]] const std::string& staging_target() const {
    return staging_target_;
  }
  [[nodiscard]] std::size_t planner_budget() const { return planner_budget_; }

 private:
  const Topology* topo_;
  const RoutingFunction* routing_;
  const routing::DuatoAdaptive* duato_;
  cdg::SearchOptions duato_options_;
  std::optional<cdg::StateGraph> states_;
  std::optional<cdg::StateGraph> escape_states_;
  std::optional<cdg::SearchResult> search_;
  bool certificate_emitted_ = false;
  std::optional<audit::Certificate> certificate_;
  const reconfig::CompiledTransitionPlan* transition_ = nullptr;
  std::string staging_base_;
  std::string staging_target_;
  std::size_t planner_budget_ = 0;
};

}  // namespace wormnet::lint
