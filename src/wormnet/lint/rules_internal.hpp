// Internal declarations of the individual rule passes (implementation detail
// of the registry in rule.cpp; not part of the public lint API).
#pragma once

#include <vector>

#include "wormnet/lint/context.hpp"
#include "wormnet/lint/diagnostic.hpp"

namespace wormnet::lint::rules {

// rules_connectivity.cpp
void routing_not_connected(LintContext& ctx, std::vector<Diagnostic>& out);
void subfunction_not_connected(LintContext& ctx, std::vector<Diagnostic>& out);
void incoherent_routing(LintContext& ctx, std::vector<Diagnostic>& out);
void not_wait_connected(LintContext& ctx, std::vector<Diagnostic>& out);
void wait_specific_true_cycle(LintContext& ctx, std::vector<Diagnostic>& out);

// rules_cycles.cpp
void extended_cdg_cyclic(LintContext& ctx, std::vector<Diagnostic>& out);
void dateline_misconfigured(LintContext& ctx, std::vector<Diagnostic>& out);

// rules_structure.cpp
void unreachable_channel(LintContext& ctx, std::vector<Diagnostic>& out);
void adaptivity_degenerate(LintContext& ctx, std::vector<Diagnostic>& out);
void vc_count_sanity(LintContext& ctx, std::vector<Diagnostic>& out);

// rules_certificates.cpp
void certificate_audit_mismatch(LintContext& ctx, std::vector<Diagnostic>& out);
void certificate_roundtrip_unstable(LintContext& ctx,
                                    std::vector<Diagnostic>& out);
void certificate_missing(LintContext& ctx, std::vector<Diagnostic>& out);

// rules_reconfig.cpp
void transition_union_unverified(LintContext& ctx,
                                 std::vector<Diagnostic>& out);
void no_certified_staging_order(LintContext& ctx,
                                std::vector<Diagnostic>& out);

}  // namespace wormnet::lint::rules
