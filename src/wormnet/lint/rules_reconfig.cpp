// Dynamic-reconfiguration rules (DESIGN 3.12 / 3.13):
//
//   WN024 transition-union-unverified   a declared transition has a union
//                                       epoch whose relation fails Duato
//                                       re-verification — packets routed
//                                       under the old relation can deadlock
//                                       against packets routed under the new
//                                       one mid-switch
//
//   WN025 no-certified-staging-order    the certified staging-order planner
//                                       found no multi-stage path from the
//                                       base relation to the declared target
//                                       within its certifier-call budget —
//                                       no known safe way to perform the
//                                       reconfiguration at all (WN024 only
//                                       refutes one specific plan)
//
// The rule runs only when the lint invocation declares a transition plan
// (LintOptions::reconfig_plan + reconfig_base); declaring a plan and never
// verifying its unions is exactly the hazard this rule exists to close, so
// the rule performs the verification itself and reports every epoch whose
// cumulative union is not certified.  The steady state is among the checked
// epochs: certification is not subset-monotone, so a safe union does not
// imply a safe end state.
#include <sstream>

#include "wormnet/core/verifier.hpp"
#include "wormnet/lint/rules_internal.hpp"
#include "wormnet/reconfig/planner.hpp"
#include "wormnet/reconfig/union_routing.hpp"

namespace wormnet::lint::rules {

void transition_union_unverified(LintContext& ctx,
                                 std::vector<Diagnostic>& out) {
  const reconfig::CompiledTransitionPlan* plan = ctx.transition();
  if (plan == nullptr || plan->empty()) return;

  core::VerifyOptions options;
  options.method = core::Method::kDuato;
  for (const reconfig::UnionSpec& spec : plan->verification_epochs()) {
    const std::unique_ptr<reconfig::UnionRouting> relation =
        reconfig::make_union_routing(ctx.topo(), spec);
    const core::Verdict verdict =
        core::verify(ctx.topo(), *relation, options);
    if (verdict.conclusion == core::Conclusion::kDeadlockFree) continue;

    Diagnostic d;
    d.rule_id = "WN024";
    d.severity = Severity::kError;
    std::ostringstream os;
    os << "transition epoch union '" << spec.to_string()
       << "' is not Duato-certified ("
       << core::to_string(verdict.conclusion)
       << ") — the cutover is not deadlock-free while packets stamped with "
          "different relation versions coexist";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

void no_certified_staging_order(LintContext& ctx,
                                std::vector<Diagnostic>& out) {
  if (ctx.staging_target().empty()) return;

  reconfig::PlannerOptions options;
  if (ctx.planner_budget() > 0) options.budget = ctx.planner_budget();
  const reconfig::StagedPlan plan = reconfig::plan_certified_transition(
      ctx.topo(), ctx.staging_base(), ctx.staging_target(), options);
  if (plan.certified) return;

  Diagnostic d;
  d.rule_id = "WN025";
  d.severity = Severity::kError;
  std::ostringstream os;
  os << "no certified staging order from '" << ctx.staging_base()
     << "' to '" << ctx.staging_target() << "' (" << plan.strategy << ", "
     << plan.verify_calls << " certifier calls): " << plan.detail
     << " — every staging ladder the planner tried leaves some cumulative "
        "union epoch uncertified; raise the budget or pick a different "
        "intermediate relation";
  d.message = os.str();
  out.push_back(std::move(d));
}

}  // namespace wormnet::lint::rules
