// Dynamic-reconfiguration rule (DESIGN 3.12):
//
//   WN024 transition-union-unverified   a declared transition has a union
//                                       epoch whose relation fails Duato
//                                       re-verification — packets routed
//                                       under the old relation can deadlock
//                                       against packets routed under the new
//                                       one mid-switch
//
// The rule runs only when the lint invocation declares a transition plan
// (LintOptions::reconfig_plan + reconfig_base); declaring a plan and never
// verifying its unions is exactly the hazard this rule exists to close, so
// the rule performs the verification itself and reports every epoch whose
// cumulative union is not certified.  The steady state is among the checked
// epochs: certification is not subset-monotone, so a safe union does not
// imply a safe end state.
#include <sstream>

#include "wormnet/core/verifier.hpp"
#include "wormnet/lint/rules_internal.hpp"
#include "wormnet/reconfig/union_routing.hpp"

namespace wormnet::lint::rules {

void transition_union_unverified(LintContext& ctx,
                                 std::vector<Diagnostic>& out) {
  const reconfig::CompiledTransitionPlan* plan = ctx.transition();
  if (plan == nullptr || plan->empty()) return;

  core::VerifyOptions options;
  options.method = core::Method::kDuato;
  for (const reconfig::UnionSpec& spec : plan->verification_epochs()) {
    const std::unique_ptr<reconfig::UnionRouting> relation =
        reconfig::make_union_routing(ctx.topo(), spec);
    const core::Verdict verdict =
        core::verify(ctx.topo(), *relation, options);
    if (verdict.conclusion == core::Conclusion::kDeadlockFree) continue;

    Diagnostic d;
    d.rule_id = "WN024";
    d.severity = Severity::kError;
    std::ostringstream os;
    os << "transition epoch union '" << spec.to_string()
       << "' is not Duato-certified ("
       << core::to_string(verdict.conclusion)
       << ") — the cutover is not deadlock-free while packets stamped with "
          "different relation versions coexist";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

}  // namespace wormnet::lint::rules
