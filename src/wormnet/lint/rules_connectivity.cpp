// Relation-level connectivity and coherence rules:
//
//   WN001 routing-not-connected     some (src, dst) cannot be served
//   WN003 subfunction-not-connected the designated escape layer fails the
//                                   connectivity / escape-everywhere check
//   WN004 incoherent-routing        the relation permits a closed walk (a
//                                   message can revisit a node, like Duato's
//                                   incoherent example)
//   WN005 not-wait-connected        a blocked state has no waiting channel
//   WN006 wait-specific-true-cycle  wait-specific relation with a True Cycle
//                                   (Theorem-2 deadlock configuration)
#include <sstream>

#include "wormnet/cwg/cwg_builder.hpp"
#include "wormnet/cwg/cycle_classify.hpp"
#include "wormnet/graph/digraph.hpp"
#include "wormnet/lint/rules_internal.hpp"

namespace wormnet::lint::rules {

void routing_not_connected(LintContext& ctx, std::vector<Diagnostic>& out) {
  const cdg::ConnectivityReport report =
      cdg::relation_connectivity(ctx.states());
  if (report.connected()) return;
  Diagnostic d;
  d.rule_id = "WN001";
  d.severity = Severity::kError;
  d.message = "routing relation is not connected: " +
              report.describe(ctx.topo());
  d.location.dest = report.dest;
  if (report.failure == cdg::ConnectivityReport::Failure::kNoInjection) {
    d.location.nodes = {report.src, report.dest};
  } else {
    d.location.channels = {report.channel};
  }
  out.push_back(std::move(d));
}

void subfunction_not_connected(LintContext& ctx,
                               std::vector<Diagnostic>& out) {
  const routing::DuatoAdaptive* duato = ctx.duato_layers();
  if (duato == nullptr) return;  // no designated escape layer to check
  const Topology& topo = ctx.topo();
  std::vector<bool> c1(topo.num_channels(), false);
  for (ChannelId c = 0; c < topo.num_channels(); ++c) {
    if (topo.channel(c).vc < duato->adaptive_vc_lo()) c1[c] = true;
  }
  const cdg::Subfunction sub(ctx.states(), c1, "escape-layer");
  for (const cdg::SubfunctionWitness& witness :
       {sub.connectivity_witness(), sub.escape_witness()}) {
    if (witness.ok()) continue;
    Diagnostic d;
    d.rule_id = "WN003";
    d.severity = Severity::kError;
    d.message = "designated escape subfunction (VCs < " +
                std::to_string(int(duato->adaptive_vc_lo())) +
                ") is not connected: " + witness.describe(topo);
    d.location.dest = witness.dest;
    if (witness.channel != topology::kInvalidChannel) {
      d.location.channels = {witness.channel};
    } else {
      d.location.nodes = {witness.node};
    }
    out.push_back(std::move(d));
    return;  // one witness is enough; the second check usually co-fails
  }
}

void incoherent_routing(LintContext& ctx, std::vector<Diagnostic>& out) {
  // A cycle in the per-destination successor graph means some message can
  // come back to a channel (hence a node) it already used: the permitted
  // path revisits a node and its prefixes are not all permitted — the shape
  // of Duato's incoherent example.  Minimal relations can never trigger
  // this (every hop strictly decreases the distance).
  const cdg::StateGraph& states = ctx.states();
  const Topology& topo = ctx.topo();
  for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
    graph::Digraph per_dest(topo.num_channels());
    for (ChannelId c = 0; c < topo.num_channels(); ++c) {
      if (!states.reachable(c, dest)) continue;
      for (ChannelId next : states.successors(c, dest)) {
        per_dest.add_edge(c, next);
      }
    }
    const auto cycle = per_dest.find_cycle();
    if (!cycle) continue;
    Diagnostic d;
    d.rule_id = "WN004";
    d.severity = Severity::kWarning;
    std::ostringstream os;
    os << "routing permits a closed walk for destination " << dest
       << " — a message can revisit nodes (incoherent/nonminimal "
          "excursion), which puts the relation outside the "
          "necessary-and-sufficient condition's exact scope";
    d.message = os.str();
    d.location.channels = *cycle;
    d.location.dest = dest;
    out.push_back(std::move(d));
    return;  // one destination's witness is representative
  }
}

void not_wait_connected(LintContext& ctx, std::vector<Diagnostic>& out) {
  const cwg::WaitConnectivity report = cwg::wait_connectivity(ctx.states());
  if (report.connected) return;
  Diagnostic d;
  d.rule_id = "WN005";
  d.severity = Severity::kError;
  d.message =
      "relation is not wait-connected (a blocked message can starve): " +
      report.describe(ctx.topo());
  d.location.dest = report.dest;
  if (report.at_injection) {
    d.location.nodes = {report.src};
  } else {
    d.location.channels = {report.channel};
  }
  out.push_back(std::move(d));
}

void wait_specific_true_cycle(LintContext& ctx, std::vector<Diagnostic>& out) {
  if (ctx.routing().wait_mode() != routing::WaitMode::kSpecific) return;
  const cdg::StateGraph& states = ctx.states();
  if (!cwg::wait_connectivity(states).connected) return;  // WN005's domain
  const cwg::Cwg graph = cwg::build_cwg(states);
  const cwg::CycleSurvey survey = cwg::survey_cycles(states, graph);
  for (const cwg::ClassifiedCycle& cycle : survey.cycles) {
    if (cycle.kind != cwg::CycleKind::kTrue) continue;
    Diagnostic d;
    d.rule_id = "WN006";
    d.severity = Severity::kError;
    std::ostringstream os;
    os << "wait-specific relation has a True Cycle of "
       << cycle.channels.size()
       << " channels — a realizable deadlock configuration (companion "
          "Theorem 2)";
    d.message = os.str();
    d.location.channels = cycle.channels;
    out.push_back(std::move(d));
    return;  // the first True Cycle is witness enough
  }
}

}  // namespace wormnet::lint::rules
