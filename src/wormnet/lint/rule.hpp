// The lint rule registry.
//
// A rule is a named, id-stable analysis pass over a LintContext.  Rules are
// registered centrally (all_rules) so the CLI, the renderers (SARIF wants
// the full catalog), the docs table, and the tests all enumerate the same
// set.  Adding a rule = write a run function (rules_*.cpp), append one entry
// to the table in rule.cpp, and document it in README's rule catalog.
//
// Conventions:
//   * ids are "WN" + 3 digits and never reused; 00x = relation-level
//     verdicts, 01x = structural hygiene, 02x = configuration sanity;
//   * a rule emits nothing when it does not apply (wrong topology kind,
//     wrong routing shape) — "not applicable" and "clean" look the same;
//   * every diagnostic carries a witness in its Location whenever the
//     underlying checker can produce one.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "wormnet/lint/context.hpp"
#include "wormnet/lint/diagnostic.hpp"

namespace wormnet::lint {

struct Rule {
  const char* id;    ///< stable id, e.g. "WN002"
  const char* name;  ///< kebab-case name, e.g. "extended-cdg-cyclic"
  Severity default_severity;
  const char* summary;  ///< one-liner for --list-rules and the SARIF catalog
  std::function<void(LintContext&, std::vector<Diagnostic>&)> run;
};

/// The full rule catalog, in id order.
[[nodiscard]] const std::vector<Rule>& all_rules();

/// Looks a rule up by id ("WN002") or name ("extended-cdg-cyclic");
/// nullptr when unknown.
[[nodiscard]] const Rule* find_rule(std::string_view id_or_name);

}  // namespace wormnet::lint
