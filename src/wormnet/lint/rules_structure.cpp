// Structural-hygiene and configuration-sanity rules:
//
//   WN010 unreachable-channel    channels no route ever uses (dead resources)
//   WN012 adaptivity-degenerate  a layered adaptive routing whose adaptive
//                                class is never actually offered
//   WN020 vc-count-sanity        virtual-channel budget cannot support the
//                                topology/routing combination
#include <sstream>

#include "wormnet/lint/rules_internal.hpp"

namespace wormnet::lint::rules {

void unreachable_channel(LintContext& ctx, std::vector<Diagnostic>& out) {
  const cdg::StateGraph& states = ctx.states();
  const Topology& topo = ctx.topo();
  std::vector<ChannelId> unused;
  for (ChannelId c = 0; c < topo.num_channels(); ++c) {
    bool used = false;
    for (NodeId dest = 0; dest < topo.num_nodes() && !used; ++dest) {
      used = states.reachable(c, dest);
    }
    if (!used) unused.push_back(c);
  }
  if (unused.empty()) return;
  Diagnostic d;
  d.rule_id = "WN010";
  d.severity = Severity::kWarning;
  std::ostringstream os;
  os << unused.size() << " of " << topo.num_channels()
     << " channels are never used by any route (dead buffer resources; "
        "first: "
     << topo.channel_name(unused.front()) << ")";
  d.message = os.str();
  d.location.channels = std::move(unused);
  out.push_back(std::move(d));
}

void adaptivity_degenerate(LintContext& ctx, std::vector<Diagnostic>& out) {
  const routing::DuatoAdaptive* duato = ctx.duato_layers();
  if (duato == nullptr) return;
  const std::uint8_t lo = duato->adaptive_vc_lo();
  const cdg::StateGraph& states = ctx.states();
  const Topology& topo = ctx.topo();
  // The adaptive class is live if any reachable supplied channel is in it.
  for (ChannelId c = 0; c < topo.num_channels(); ++c) {
    if (topo.channel(c).vc < lo) continue;
    for (NodeId dest = 0; dest < topo.num_nodes(); ++dest) {
      if (states.reachable(c, dest)) return;
    }
  }
  Diagnostic d;
  d.rule_id = "WN012";
  d.severity = Severity::kInfo;
  std::ostringstream os;
  os << "adaptive layer is degenerate: no reachable state ever supplies a "
        "channel with VC >= "
     << int(lo) << " — the relation collapses to its escape layer";
  d.message = os.str();
  out.push_back(std::move(d));
}

void vc_count_sanity(LintContext& ctx, std::vector<Diagnostic>& out) {
  const Topology& topo = ctx.topo();
  if (!topo.is_cube()) return;
  const std::uint8_t vcs = topo.cube().vcs;
  bool any_wrap = false;
  for (std::size_t dim = 0; dim < topo.num_dims(); ++dim) {
    any_wrap = any_wrap || topo.cube().wraps[dim];
  }
  if (any_wrap && vcs < 2) {
    Diagnostic d;
    d.rule_id = "WN020";
    d.severity = Severity::kWarning;
    std::ostringstream os;
    os << "wraparound topology with a single virtual channel per link — no "
          "dateline VC switch is possible, so every minimal deterministic "
          "routing has a cyclic channel dependency graph";
    d.message = os.str();
    out.push_back(std::move(d));
  }
  const routing::DuatoAdaptive* duato = ctx.duato_layers();
  if (duato != nullptr && duato->adaptive_vc_lo() >= vcs) {
    Diagnostic d;
    d.rule_id = "WN020";
    d.severity = Severity::kWarning;
    std::ostringstream os;
    os << "layered adaptive routing reserves VCs [0, "
       << int(duato->adaptive_vc_lo()) << ") for escape but the topology has "
       << "only " << int(vcs)
       << " VC(s) per link — no adaptive class remains";
    d.message = os.str();
    out.push_back(std::move(d));
  }
}

}  // namespace wormnet::lint::rules
