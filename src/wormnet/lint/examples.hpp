// The golden example matrix: every algorithm in the core registry paired
// with a canonical topology and the lint outcome it must produce.  The
// matrix is both a regression corpus (tests assert each row) and the
// substance of `wormnet-lint --all-examples` / the `lint_examples` ctest.
//
// Expectations are deliberately coarse — spotless / no-errors / errors plus
// a set of rule ids that must fire — so the corpus pins the *verdicts*
// without freezing message wording.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "wormnet/lint/engine.hpp"

namespace wormnet::lint {

struct ExampleExpectation {
  enum class Expect : std::uint8_t {
    kSpotless,  ///< zero diagnostics of any severity
    kNoErrors,  ///< warnings/notes allowed, errors are not
    kErrors,    ///< at least one error-severity diagnostic
  };

  std::string topology_spec;  ///< registry spec, e.g. "mesh:4x4:2"
  std::string algorithm;      ///< registry name, e.g. "duato-mesh"
  Expect expect = Expect::kNoErrors;
  std::vector<std::string> must_fire;  ///< rule ids that must appear
};

/// One row per registry algorithm (tests assert the coverage is complete).
[[nodiscard]] const std::vector<ExampleExpectation>& example_matrix();

struct ExampleRun {
  const ExampleExpectation* expectation = nullptr;
  std::shared_ptr<Topology> topo;  ///< kept alive for rendering witnesses
  std::string subject;             ///< "spec algorithm"
  LintResult result;
  bool passed = false;
  std::string failure;  ///< empty when passed
};

/// Lints every matrix row and grades it against its expectation.
[[nodiscard]] std::vector<ExampleRun> run_examples();

}  // namespace wormnet::lint
