#include "wormnet/lint/examples.hpp"

#include <algorithm>
#include <sstream>

#include "wormnet/core/registry.hpp"

namespace wormnet::lint {

const std::vector<ExampleExpectation>& example_matrix() {
  using Expect = ExampleExpectation::Expect;
  static const std::vector<ExampleExpectation> kMatrix = {
      {"mesh:4x4", "e-cube", Expect::kSpotless, {}},
      // Dateline reserves vc1 for post-wrap traffic, so some vc1 channels
      // are legitimately idle; the dead-resource warning must keep firing.
      {"ring:8:2", "dateline", Expect::kNoErrors, {"WN010"}},
      {"mesh:4x4", "west-first", Expect::kSpotless, {}},
      {"mesh:4x4", "north-last", Expect::kSpotless, {}},
      {"mesh:4x4", "negative-first", Expect::kSpotless, {}},
      {"mesh:4x4", "negative-first-nonmin", Expect::kNoErrors, {}},
      // The headline configuration: fully adaptive with an escape layer,
      // certified by the necessary-and-sufficient condition.  Must be clean.
      {"mesh:4x4:2", "duato-mesh", Expect::kSpotless, {}},
      {"hypercube:3:2", "duato-hypercube", Expect::kSpotless, {}},
      {"torus:4x4:3", "duato-torus", Expect::kNoErrors, {"WN010"}},
      // The canonical deadlock: minimal adaptive on a ring, no escape
      // structure.  16 channels, so the subfunction search is exhaustive and
      // the verdict is a proof, not a budget artifact.
      {"ring:8", "unrestricted", Expect::kErrors, {"WN002", "WN020"}},
      // HPL is nonminimal (closed walks) and uncertifiable by the condition;
      // its minimal core is certified clean.
      {"mesh:3x3", "hpl", Expect::kNoErrors, {"WN002", "WN004"}},
      {"mesh:3x3", "hpl-minimal", Expect::kSpotless, {}},
      {"hypercube:3:2", "enhanced", Expect::kNoErrors, {"WN002"}},
      // Removing the Theorem-6 restriction creates a realizable deadlock:
      // the wait-specific True-Cycle rule must catch it as an error.
      {"hypercube:3:2", "enhanced-relaxed", Expect::kErrors, {"WN006"}},
      {"incoherent", "incoherent", Expect::kNoErrors, {"WN004"}},
      {"incoherent", "incoherent-specific", Expect::kErrors, {"WN006"}},
  };
  return kMatrix;
}

std::vector<ExampleRun> run_examples() {
  std::vector<ExampleRun> runs;
  for (const ExampleExpectation& row : example_matrix()) {
    ExampleRun run;
    run.expectation = &row;
    run.topo =
        std::make_shared<Topology>(core::make_topology(row.topology_spec));
    run.subject = row.topology_spec + " " + row.algorithm;
    const auto routing = core::make_algorithm(row.algorithm, *run.topo);
    run.result = run_lint(*run.topo, *routing);

    std::ostringstream failure;
    const std::size_t errors = run.result.count(Severity::kError);
    const std::size_t total = run.result.diagnostics.size();
    switch (row.expect) {
      case ExampleExpectation::Expect::kSpotless:
        if (total != 0) {
          failure << "expected zero diagnostics, got " << total;
        }
        break;
      case ExampleExpectation::Expect::kNoErrors:
        if (errors != 0) {
          failure << "expected no errors, got " << errors;
        }
        break;
      case ExampleExpectation::Expect::kErrors:
        if (errors == 0) {
          failure << "expected at least one error, got none";
        }
        break;
    }
    for (const std::string& rule : row.must_fire) {
      const bool fired = std::any_of(
          run.result.diagnostics.begin(), run.result.diagnostics.end(),
          [&](const Diagnostic& d) { return d.rule_id == rule; });
      if (!fired) {
        if (failure.tellp() > 0) failure << "; ";
        failure << "expected rule " << rule << " to fire";
      }
    }
    run.failure = failure.str();
    run.passed = run.failure.empty();
    runs.push_back(std::move(run));
  }
  return runs;
}

}  // namespace wormnet::lint
