#include "wormnet/lint/render.hpp"

#include <iomanip>

#include "wormnet/obs/json.hpp"

namespace wormnet::lint {

namespace {

const Rule* rule_of(const Diagnostic& d) { return find_rule(d.rule_id); }

void write_location_fields(obs::JsonWriter& w, const Diagnostic& d,
                           const Topology& topo) {
  if (!d.location.channels.empty()) {
    w.key("channels");
    w.begin_array();
    for (ChannelId c : d.location.channels) w.string(topo.channel_name(c));
    w.end_array();
  }
  if (!d.location.nodes.empty()) {
    w.key("nodes");
    w.begin_array();
    for (NodeId n : d.location.nodes) {
      w.number(static_cast<std::uint64_t>(n));
    }
    w.end_array();
  }
  if (!d.location.cycle.empty()) {
    w.key("cycle");
    w.begin_array();
    for (const CycleEdge& edge : d.location.cycle) {
      w.begin_object();
      w.field("from", topo.channel_name(edge.from));
      w.field("to", topo.channel_name(edge.to));
      w.field("kind", cdg::to_string(edge.kind));
      w.end_object();
    }
    w.end_array();
  }
  if (d.location.dest.has_value()) {
    w.field("dest", static_cast<std::uint64_t>(*d.location.dest));
  }
}

}  // namespace

void render_human(std::ostream& os, const std::vector<LintUnit>& units,
                  bool show_timings) {
  for (const LintUnit& unit : units) {
    for (const Diagnostic& d : unit.result.diagnostics) {
      const Rule* rule = rule_of(d);
      os << unit.subject << ": " << to_string(d.severity) << ": " << d.message
         << " [" << d.rule_id;
      if (rule != nullptr) os << " " << rule->name;
      os << "]\n";
      if (!d.location.empty()) {
        os << "  note: witness: " << d.location.describe(*unit.topo) << "\n";
      }
    }
    const std::size_t errors = unit.result.count(Severity::kError);
    const std::size_t warnings = unit.result.count(Severity::kWarning);
    const std::size_t notes = unit.result.count(Severity::kInfo);
    if (errors + warnings + notes == 0) {
      os << unit.subject << ": clean (" << unit.result.timings.size()
         << " rules)\n";
    } else {
      os << unit.subject << ": " << errors << " error(s), " << warnings
         << " warning(s), " << notes << " note(s)\n";
    }
    if (show_timings) {
      for (const RuleTiming& t : unit.result.timings) {
        os << "  timing: " << t.rule->id << " " << std::fixed
           << std::setprecision(3) << t.seconds * 1e3 << " ms ("
           << t.emitted << " emitted)\n";
        os.unsetf(std::ios::floatfield);
      }
    }
  }
}

void render_jsonl(std::ostream& os, const std::vector<LintUnit>& units) {
  for (const LintUnit& unit : units) {
    for (const Diagnostic& d : unit.result.diagnostics) {
      obs::JsonWriter w(os);
      w.begin_object();
      w.field("subject", unit.subject);
      w.field("rule", d.rule_id);
      if (const Rule* rule = rule_of(d)) w.field("name", rule->name);
      w.field("severity", to_string(d.severity));
      w.field("message", d.message);
      write_location_fields(w, d, *unit.topo);
      w.end_object();
      os << "\n";
    }
  }
}

void render_sarif(std::ostream& os, const std::vector<LintUnit>& units) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  w.field("version", "2.1.0");
  w.key("runs");
  w.begin_array();
  w.begin_object();

  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.field("name", "wormnet-lint");
  w.field("informationUri",
          "https://doi.org/10.1109/71.473515");  // the source paper
  w.key("rules");
  w.begin_array();
  for (const Rule& rule : all_rules()) {
    w.begin_object();
    w.field("id", rule.id);
    w.field("name", rule.name);
    w.key("shortDescription");
    w.begin_object();
    w.field("text", rule.summary);
    w.end_object();
    w.key("defaultConfiguration");
    w.begin_object();
    w.field("level", sarif_level(rule.default_severity));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results");
  w.begin_array();
  for (const LintUnit& unit : units) {
    for (const Diagnostic& d : unit.result.diagnostics) {
      w.begin_object();
      w.field("ruleId", d.rule_id);
      std::uint64_t index = 0;
      for (const Rule& rule : all_rules()) {
        if (d.rule_id == rule.id) break;
        ++index;
      }
      if (index < all_rules().size()) w.field("ruleIndex", index);
      w.field("level", sarif_level(d.severity));
      w.key("message");
      w.begin_object();
      std::string text = d.message;
      if (!d.location.empty()) {
        text += " — witness: " + d.location.describe(*unit.topo);
      }
      w.field("text", text);
      w.end_object();
      w.key("locations");
      w.begin_array();
      w.begin_object();
      w.key("logicalLocations");
      w.begin_array();
      w.begin_object();
      w.field("name", unit.subject);
      w.field("kind", "module");
      w.end_object();
      w.end_array();
      w.end_object();
      w.end_array();
      w.key("properties");
      w.begin_object();
      write_location_fields(w, d, *unit.topo);
      w.end_object();
      w.end_object();  // result
    }
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  os << "\n";
}

}  // namespace wormnet::lint
