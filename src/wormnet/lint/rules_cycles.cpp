// Dependency-cycle rules:
//
//   WN002 extended-cdg-cyclic   no connected routing subfunction with an
//                               acyclic extended CDG was found; the witness
//                               is the base relation's dependency cycle with
//                               each edge classified
//   WN011 dateline-misconfigured a wraparound dimension keeps a dependency
//                               cycle among its own channels — the VC
//                               discipline never cuts the ring
#include <sstream>

#include "wormnet/cdg/cdg_builder.hpp"
#include "wormnet/lint/rules_internal.hpp"

namespace wormnet::lint::rules {

void extended_cdg_cyclic(LintContext& ctx, std::vector<Diagnostic>& out) {
  const cdg::SearchResult& search = ctx.duato_search();
  if (search.found) return;

  const cdg::StateGraph& states = ctx.states();
  const routing::RoutingFunction& routing = ctx.routing();
  // The condition is exact (necessary AND sufficient) only for
  // input-independent, wait-on-any, coherent relations; minimality implies
  // coherence, so this is the certified scope.
  const bool in_scope =
      routing.form() == routing::RelationForm::kNodeDest &&
      routing.wait_mode() == routing::WaitMode::kAnyOf &&
      cdg::relation_minimal(states);

  Diagnostic d;
  d.rule_id = "WN002";
  const cdg::DuatoReport& full = search.full_set_report;
  for (std::size_t i = 0; i < full.witness_cycle.size(); ++i) {
    CycleEdge edge;
    edge.from = full.witness_cycle[i];
    edge.to = full.witness_cycle[(i + 1) % full.witness_cycle.size()];
    edge.kind = i < full.witness_cycle_kinds.size()
                    ? full.witness_cycle_kinds[i]
                    : cdg::DepKind::kDirect;
    d.location.cycle.push_back(edge);
  }

  std::ostringstream os;
  if (search.exhaustive_complete && in_scope) {
    d.severity = Severity::kError;
    os << "no connected routing subfunction with an acyclic extended CDG "
          "exists (exhaustive search over every channel subset) — by the "
          "necessary-and-sufficient condition the relation is NOT "
          "deadlock-free";
  } else if (!in_scope) {
    d.severity = Severity::kWarning;
    os << "no connected routing subfunction with an acyclic extended CDG "
          "found (" << search.candidates_tried
       << " candidates tried); the relation is outside the condition's "
          "exact scope (input-dependent, wait-specific, or nonminimal), so "
          "this does not prove deadlock — but deadlock freedom is not "
          "certified either";
  } else {
    // In scope but the search ran out of budget: absence of a certificate is
    // not a proof of deadlock, so this stays below error.  CI that wants to
    // insist on certifiability runs with --fail-on warning.
    d.severity = Severity::kWarning;
    os << "no connected routing subfunction with an acyclic extended CDG "
          "found within budget (" << search.candidates_tried
       << " candidates tried) — deadlock freedom is NOT certified";
  }
  if (!d.location.cycle.empty()) {
    os << "; base dependency cycle left unbroken follows";
  }
  d.message = os.str();
  out.push_back(std::move(d));
}

void dateline_misconfigured(LintContext& ctx, std::vector<Diagnostic>& out) {
  const Topology& topo = ctx.topo();
  if (!topo.is_cube()) return;
  bool any_wrap = false;
  for (std::size_t dim = 0; dim < topo.num_dims(); ++dim) {
    any_wrap = any_wrap || topo.cube().wraps[dim];
  }
  if (!any_wrap) return;

  // Examine the escape layer when the routing designates one (the adaptive
  // layer is *allowed* to cycle); otherwise the relation itself.
  const bool layered = ctx.duato_layers() != nullptr;
  const cdg::StateGraph& states =
      layered ? ctx.escape_states() : ctx.states();
  const graph::Digraph cdg_graph = cdg::build_cdg(states);

  for (std::size_t dim = 0; dim < topo.num_dims(); ++dim) {
    if (!topo.cube().wraps[dim]) continue;
    for (const topology::Direction dir :
         {topology::Direction::kPos, topology::Direction::kNeg}) {
      if (topo.cube().unidirectional && dir == topology::Direction::kNeg) {
        continue;
      }
      // Restrict the CDG to this dimension+direction's channels: a cycle
      // that survives the restriction lives entirely on the ring, which is
      // exactly the dependency the dateline VC switch is supposed to cut.
      std::vector<ChannelId> members;
      std::vector<std::uint32_t> local(topo.num_channels(),
                                       topology::kInvalidChannel);
      for (ChannelId c = 0; c < topo.num_channels(); ++c) {
        const topology::Channel& ch = topo.channel(c);
        if (ch.dim == dim && ch.dir == dir) {
          local[c] = static_cast<std::uint32_t>(members.size());
          members.push_back(c);
        }
      }
      graph::Digraph ring(members.size());
      for (ChannelId c : members) {
        for (graph::Vertex to : cdg_graph.out(c)) {
          if (local[to] != topology::kInvalidChannel) {
            ring.add_edge(local[c], local[to]);
          }
        }
      }
      const auto cycle = ring.find_cycle();
      if (!cycle) continue;
      Diagnostic d;
      d.rule_id = "WN011";
      d.severity = Severity::kWarning;
      std::ostringstream os;
      os << "wraparound dimension " << dim << " ("
         << (dir == topology::Direction::kPos ? "+" : "-") << ") retains a "
         << cycle->size() << "-channel dependency cycle among its own "
         << "channels — the " << (layered ? "escape layer's " : "")
         << "virtual-channel discipline never switches class across the "
            "dateline";
      d.message = os.str();
      d.location.channels.reserve(cycle->size());
      for (graph::Vertex v : *cycle) d.location.channels.push_back(members[v]);
      out.push_back(std::move(d));
    }
  }
}

}  // namespace wormnet::lint::rules
