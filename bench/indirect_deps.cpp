// EXP-D — indirect dependencies cannot be omitted.
//
// The incoherent 4-node example with the minimal channels as escape set C1:
// the DIRECT dependency graph of R1 is acyclic — a checker that stopped at
// direct dependencies (pre-extended-CDG reasoning) would certify the
// relation.  The detour channels cA1/cB2 (outside C1) create an INDIRECT
// self-dependency cL2 -> (cA1) -> cL2 that closes a cycle, and under the
// wait-for-one-specific-channel discipline the simulator reproduces a real
// deadlock from exactly this structure.  Wait-on-any survives (the waiting-
// graph machinery explains why) — showing the coherence/waiting assumptions
// delimiting the condition's exact scope.
#include <iostream>

#include "wormnet/wormnet.hpp"

int main() {
  using namespace wormnet;

  const topology::Topology topo = routing::make_incoherent_net();
  const auto ch = routing::incoherent_channels(topo);
  const routing::IncoherentRouting wait_any(topo, false);
  const routing::IncoherentRouting wait_one(topo, true);

  std::cout << "EXP-D: indirect dependencies matter (incoherent example)\n\n";

  const cdg::StateGraph states(topo, wait_any);
  std::vector<bool> c1(topo.num_channels(), true);
  c1[ch.cA1] = false;
  c1[ch.cB2] = false;
  const cdg::Subfunction sub(states, c1, "minimal channels (no detours)");
  const cdg::ExtendedCdg ecdg = cdg::build_extended_cdg(sub);

  util::Table table({"graph", "edges", "cyclic", "note"});
  table.add_row({"direct-only dependency graph of R1",
                 std::to_string(ecdg.direct_edges),
                 util::fmt_bool(ecdg.direct_only.has_cycle()),
                 "a direct-only checker would say \"safe\""});
  table.add_row({"extended CDG (direct + indirect)",
                 std::to_string(ecdg.graph.num_edges()),
                 util::fmt_bool(ecdg.graph.has_cycle()),
                 std::string("indirect self-dep cL2->cL2 via cA1: ") +
                     util::fmt_bool(ecdg.graph.has_edge(ch.cL2, ch.cL2))});
  table.print(std::cout);

  std::cout << "\nR1 connected: " << util::fmt_bool(sub.connected())
            << ", escape everywhere: "
            << util::fmt_bool(sub.escape_everywhere()) << ", indirect edges: "
            << ecdg.indirect_edges << "\n\n";

  // The danger is real: with wait-specific semantics, replaying a True
  // Cycle of the waiting graph wedges the simulator.
  const cdg::StateGraph states_one(topo, wait_one);
  const cwg::Cwg graph_one = cwg::build_cwg(states_one);
  const cwg::CycleSurvey survey = cwg::survey_cycles(states_one, graph_one);
  util::Table sims({"wait discipline", "static cwg verdict", "simulation"});
  {
    const core::Verdict v =
        core::verify(topo, wait_one, {.method = core::Method::kCwg});
    std::string sim_result = "-";
    for (const auto& cycle : survey.cycles) {
      if (cycle.kind != cwg::CycleKind::kTrue) continue;
      const auto stats = core::replay_witness(topo, wait_one, cycle);
      sim_result = stats.deadlocked ? "DEADLOCK (witness replay)"
                                    : "no deadlock";
      break;
    }
    sims.add_row({"wait-specific", core::to_string(v.conclusion), sim_result});
  }
  {
    const core::Verdict v =
        core::verify(topo, wait_any, {.method = core::Method::kCwg});
    sim::SimConfig cfg;
    cfg.injection_rate = 0.6;
    cfg.packet_length = 12;
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 20000;
    cfg.drain_cycles = 8000;
    cfg.seed = 3;
    const auto stats = sim::run(topo, wait_any, cfg);
    sims.add_row({"wait-on-any", core::to_string(v.conclusion),
                  stats.deadlocked ? "DEADLOCK" : "all delivered"});
  }
  sims.print(std::cout);

  // Cross dependencies are load-bearing too: a per-destination escape
  // (ICPP'94's generalization) that is connected and pair-by-pair acyclic is
  // rejected only because cross dependencies close the cycle — on a relation
  // that genuinely deadlocks.
  std::cout << "\ncross dependencies (per-destination escape on unrestricted "
               "2-VC ring):\n";
  {
    const topology::Topology ring = topology::make_unidirectional_ring(4, 2);
    const routing::UnrestrictedMinimal unrestricted(ring);
    const routing::DatelineRouting dateline(ring);
    const cdg::StateGraph ring_states(ring, unrestricted);
    const cdg::Subfunction per_dest = cdg::per_destination_from_escape(
        ring_states, dateline, "dateline-per-dest");
    const cdg::ExtendedCdg ring_ecdg = cdg::build_extended_cdg(per_dest);
    std::cout << "  connected: " << util::fmt_bool(per_dest.connected())
              << ", direct " << ring_ecdg.direct_edges << ", indirect "
              << ring_ecdg.indirect_edges << ", CROSS "
              << ring_ecdg.cross_edges << ", cyclic "
              << util::fmt_bool(ring_ecdg.graph.has_cycle())
              << "  (relation deadlocks; cross edges catch it)\n";
  }

  // For scale: the indirect-edge population on a real construction.
  std::cout << "\nindirect-edge population on duato-adaptive(mesh 6x6, 2 "
               "VCs):\n";
  const topology::Topology mesh = topology::make_mesh({6, 6}, 2);
  const auto duato = routing::make_duato_mesh(mesh);
  const cdg::StateGraph mesh_states(mesh, *duato);
  std::vector<bool> escape(mesh.num_channels(), false);
  for (topology::ChannelId c = 0; c < mesh.num_channels(); ++c) {
    if (mesh.channel(c).vc == 0) escape[c] = true;
  }
  const cdg::Subfunction mesh_sub(mesh_states, escape, "vc0");
  const cdg::ExtendedCdg mesh_ecdg = cdg::build_extended_cdg(mesh_sub);
  std::cout << "  direct " << mesh_ecdg.direct_edges << ", indirect "
            << mesh_ecdg.indirect_edges << ", acyclic "
            << util::fmt_bool(!mesh_ecdg.graph.has_cycle()) << "\n";
  std::cout << "\nexpected shape: direct-only acyclic but extended cyclic on "
               "the example;\nwait-specific deadlocks, wait-on-any survives; "
               "real constructions carry\nsubstantial indirect-edge "
               "populations yet stay acyclic.\n";
  return 0;
}
