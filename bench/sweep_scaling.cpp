// EXP-SWEEP — thread-scaling of the parallel sweep engine.
//
// Runs the reference grid (3 algorithms × 4 loads × 4 replications on an
// 8x8 2-VC mesh = 48 points) at 1, 2, 4, ... threads up to the hardware,
// checks the engine's determinism contract on the fly (every thread count
// must render byte-identical JSONL), and writes the speedup curve to
// BENCH_sweep.json.  The acceptance bar for the engine is >= 3x at 8
// threads; shard-level parallelism with a memoized AnalysisCache should
// clear it comfortably since points are embarrassingly parallel.
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "wormnet/exp/sweep_io.hpp"
#include "wormnet/exp/sweep_runner.hpp"
#include "wormnet/obs/json.hpp"

namespace {

using namespace wormnet;

constexpr const char* kGrid =
    "topo=mesh:8x8:2;routing=e-cube,west-first,duato;"
    "load=0.10:0.40:0.10;reps=4;seed=7";

exp::SweepSpec reference_spec() {
  exp::SweepSpec spec = exp::parse_grid(kGrid);
  spec.base.warmup_cycles = 300;
  spec.base.measure_cycles = 1500;
  spec.base.drain_cycles = 6000;
  return spec;
}

std::string render(const exp::SweepOutcome& outcome) {
  std::ostringstream os;
  exp::write_jsonl(os, outcome);
  return os.str();
}

}  // namespace

int main() {
  std::cout << "EXP-SWEEP: sweep engine thread scaling\n";
  const exp::SweepSpec spec = reference_spec();

  std::size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  // Always sweep 1..8 threads even when the host has fewer cores: the
  // byte-identical check must hold under oversubscription too, and
  // hardware_threads in the JSON tells a reader how to interpret the
  // speedup column (expect ~1x beyond the core count).
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  for (std::size_t t = 16; t <= hardware; t *= 2) thread_counts.push_back(t);

  struct Row {
    std::size_t threads;
    double wall_ms;
    std::size_t points;
  };
  std::vector<Row> rows;
  std::string reference_render;
  bool deterministic = true;

  for (const std::size_t threads : thread_counts) {
    exp::RunnerOptions options;
    options.threads = threads;
    const exp::SweepOutcome outcome = exp::run_sweep(spec, options);
    const std::string rendered = render(outcome);
    if (reference_render.empty()) {
      reference_render = rendered;
    } else if (rendered != reference_render) {
      deterministic = false;
      std::cerr << "DETERMINISM VIOLATION at " << threads << " threads\n";
    }
    rows.push_back({threads, outcome.wall_ms, outcome.results.size()});
    std::cout << "  threads=" << threads << "  wall=" << outcome.wall_ms
              << " ms  speedup=" << rows.front().wall_ms / outcome.wall_ms
              << "\n";
  }

  std::ofstream file("BENCH_sweep.json", std::ios::binary);
  obs::JsonWriter w(file);
  w.begin_object();
  w.field("bench", "sweep_scaling");
  w.field("grid", kGrid);
  w.field("points", static_cast<std::uint64_t>(rows.front().points));
  w.field("hardware_threads", static_cast<std::uint64_t>(hardware));
  w.field("byte_identical", deterministic);
  w.key("results");
  w.begin_array();
  for (const Row& row : rows) {
    w.begin_object();
    w.field("threads", static_cast<std::uint64_t>(row.threads));
    w.field("wall_ms", row.wall_ms);
    w.field("speedup", rows.front().wall_ms / row.wall_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  file << "\n";

  std::cout << "wrote BENCH_sweep.json ("
            << (deterministic ? "outputs byte-identical across thread counts"
                              : "DETERMINISM VIOLATION")
            << ")\n";
  return deterministic ? 0 : 1;
}
