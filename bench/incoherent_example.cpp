// EXP-H — the worked incoherent example, reproduced mechanically.
//
// Rebuilds the companion text's Sections 5-8 narrative as tables: the CWG,
// its classified cycles, the CWG -> CWG' reduction log, and the verdict
// split between the two waiting disciplines.
#include <iostream>

#include "wormnet/wormnet.hpp"

int main() {
  using namespace wormnet;

  const topology::Topology topo = routing::make_incoherent_net();
  const routing::IncoherentRouting wait_any(topo, false);
  const routing::IncoherentRouting wait_one(topo, true);

  std::cout << "EXP-H: Duato's incoherent example — waiting-graph analysis\n\n";

  const cdg::StateGraph states(topo, wait_any);
  const cwg::Cwg graph = cwg::build_cwg(states);

  std::cout << "CWG edges (" << graph.graph.num_edges() << "):\n";
  for (graph::Vertex u = 0; u < graph.graph.num_vertices(); ++u) {
    for (graph::Vertex v : graph.graph.out(u)) {
      std::cout << "  " << topo.channel_name(u) << " -> "
                << topo.channel_name(v) << "\n";
    }
  }

  const cwg::CycleSurvey survey = cwg::survey_cycles(states, graph);
  util::Table cycles({"cycle", "classification"});
  for (const auto& cycle : survey.cycles) {
    cycles.add_row({core::describe_cycle(topo, cycle.channels),
                    cwg::to_string(cycle.kind)});
  }
  std::cout << "\ncycle classification (" << survey.true_cycles << " True, "
            << survey.false_cycles << " False Resource):\n";
  cycles.print(std::cout);

  const cwg::ReductionResult reduction =
      cwg::reduce_cwg(states, graph, survey, {});
  std::cout << "\nreduction to CWG': "
            << (reduction.success ? "success" : "FAILED") << "; removed:\n";
  for (const auto& [from, to] : reduction.removed) {
    std::cout << "  " << topo.channel_name(from) << " -/-> "
              << topo.channel_name(to) << "\n";
  }

  util::Table verdicts({"wait discipline", "cwg verdict", "detail"});
  for (const routing::IncoherentRouting* routing : {&wait_any, &wait_one}) {
    const core::Verdict v =
        core::verify(topo, *routing, {.method = core::Method::kCwg});
    verdicts.add_row({routing->name(), core::to_string(v.conclusion),
                      v.detail.substr(0, 70)});
  }
  std::cout << "\n";
  verdicts.print(std::cout);
  std::cout << "\nexpected shape: both True and False Resource cycles in the "
               "CWG; reduction\nsucceeds; wait-on-any deadlock-free, "
               "wait-specific deadlockable (Theorems 2/3).\n";
  return 0;
}
