// EXP-J — the waiting discipline matters (the Section-6 dichotomy, run).
//
// The same routing relation behaves differently depending on how a blocked
// header waits:
//   * wait-on-any: re-arbitrate over every candidate each cycle — the
//     discipline Duato's condition assumes;
//   * wait-specific: commit to the first candidate until it frees — the
//     discipline under which only the waiting-channel structure protects
//     you.
// Duato's fully adaptive construction is proven free under wait-on-any; its
// proof does NOT transfer to blind wait-specific commitment (committing to
// an adaptive channel instead of the escape can wedge).  This harness runs
// both disciplines on the same relations under stress and reports what
// happens — the empirical counterpart of choosing the right theorem.
#include <iostream>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

std::string outcome(const sim::SimStats& stats) {
  if (stats.deadlocked) {
    return "DEADLOCK @" + std::to_string(stats.deadlock.cycle);
  }
  if (stats.saturated) return "saturated";
  return "ok, lat " + util::fmt_double(stats.avg_latency, 1);
}

}  // namespace

int main() {
  std::cout << "EXP-J: wait-on-any vs wait-specific, same relations\n\n";

  struct Case {
    std::string topo_kind;
    std::string algo;
  };
  const std::vector<Case> cases = {
      {"mesh", "duato-mesh"},      {"mesh", "e-cube"},
      {"torus", "duato-torus"},    {"hypercube", "enhanced"},
      {"mesh1", "unrestricted"},   {"incoherent", "incoherent"},
  };

  util::Table table(
      {"topology", "algorithm", "wait-on-any", "wait-specific (commit first)"});
  for (const Case& c : cases) {
    const topology::Topology topo = [&]() -> topology::Topology {
      if (c.topo_kind == "mesh") return topology::make_mesh({4, 4}, 2);
      if (c.topo_kind == "mesh1") return topology::make_mesh({4, 4}, 1);
      if (c.topo_kind == "torus") return topology::make_torus({4, 4}, 3);
      if (c.topo_kind == "incoherent") return routing::make_incoherent_net();
      return topology::make_hypercube(3, 2);
    }();
    const auto routing = core::make_algorithm(c.algo, topo);
    std::string results[2];
    for (int mode = 0; mode < 2; ++mode) {
      bool deadlocked = false;
      sim::SimStats last;
      for (std::uint64_t seed = 1; seed <= 3 && !deadlocked; ++seed) {
        sim::SimConfig cfg;
        cfg.injection_rate = 0.8;
        cfg.packet_length = 20;
        cfg.buffer_depth = 1;
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 12000;
        cfg.drain_cycles = 8000;
        cfg.seed = seed;
        cfg.wait_override = mode == 0 ? sim::WaitOverride::kForceAny
                                      : sim::WaitOverride::kForceSpecific;
        last = sim::run(topo, *routing, cfg);
        deadlocked = last.deadlocked;
      }
      results[mode] = outcome(last);
    }
    table.add_row({topo.name(), c.algo, results[0], results[1]});
  }
  table.print(std::cout);
  std::cout
      << "\nexpected shape: wait-on-any never deadlocks a proven-free"
      << "\nrelation (duato-*, e-cube, enhanced, incoherent).  Blind"
      << "\nwait-specific commitment CAN wedge relations whose proof assumed"
      << "\nwait-on-any — committing to an adaptive channel instead of the"
      << "\nescape defeats Duato's construction, and the incoherent example"
      << "\nenters its Theorem-2 regime.  Deterministic e-cube/dateline and"
      << "\nthe Enhanced algorithm (whose native waiting channel is already"
      << "\nspecific and safe) are unaffected; unrestricted 1-VC wedges"
      << "\nunder either discipline.\n";
  return 0;
}
