// EXP-I — constructive necessity, executed.
//
// For known-deadlockable relations, the static analysis produces a True
// Cycle; the witness builder converts it into a scripted-packet scenario;
// the flit-level simulator replays it and wedges within bounded cycles.
// Controls: the deadlock-free siblings have no True Cycle to exploit and
// survive the same pressure.
#include <iostream>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

struct Outcome {
  std::string net;
  std::string algo;
  std::string true_cycle = "-";
  std::string replay = "-";
};

Outcome attack(const topology::Topology& topo,
               const routing::RoutingFunction& routing) {
  Outcome out{topo.name(), routing.name(), "-", "-"};
  const cdg::StateGraph states(topo, routing);
  const cwg::Cwg graph = cwg::build_cwg(states);
  const cwg::CycleSurvey survey = cwg::survey_cycles(states, graph, 4000);
  for (const auto& cycle : survey.cycles) {
    if (cycle.kind != cwg::CycleKind::kTrue) continue;
    out.true_cycle = core::describe_cycle(topo, cycle.channels);
    if (out.true_cycle.size() > 48) {
      out.true_cycle = out.true_cycle.substr(0, 45) + "...";
    }
    const sim::SimStats stats = core::replay_witness(topo, routing, cycle);
    out.replay = stats.deadlocked
                     ? "DEADLOCK @" + std::to_string(stats.deadlock.cycle)
                     : "survived (?)";
    return out;
  }
  out.true_cycle = "none";
  // Control pressure: heavy random traffic instead.
  sim::SimConfig cfg;
  cfg.injection_rate = 0.85;
  cfg.packet_length = 16;
  cfg.buffer_depth = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 12000;
  cfg.drain_cycles = 8000;
  cfg.seed = 21;
  const sim::SimStats stats = sim::run(topo, routing, cfg);
  out.replay = stats.deadlocked ? "DEADLOCK (unexpected!)" : "survived stress";
  return out;
}

}  // namespace

int main() {
  std::cout << "EXP-I: True Cycle -> scripted witness -> simulated deadlock\n\n";

  std::vector<Outcome> rows;
  {
    const auto ring = topology::make_unidirectional_ring(4, 1);
    const routing::UnrestrictedMinimal routing(ring);
    rows.push_back(attack(ring, routing));
  }
  {
    const auto ring = topology::make_unidirectional_ring(4, 2);
    const routing::DatelineRouting routing(ring);
    rows.push_back(attack(ring, routing));
  }
  {
    const auto cube = topology::make_hypercube(3, 2);
    const routing::EnhancedFullyAdaptive relaxed(cube, /*relaxed=*/true);
    rows.push_back(attack(cube, relaxed));
    const routing::EnhancedFullyAdaptive strict(cube, /*relaxed=*/false);
    rows.push_back(attack(cube, strict));
  }
  {
    const auto net = routing::make_incoherent_net();
    const routing::IncoherentRouting wait_one(net, /*wait_specific=*/true);
    rows.push_back(attack(net, wait_one));
  }

  util::Table table({"network", "algorithm", "true cycle", "witness replay"});
  for (const Outcome& o : rows) {
    table.add_row({o.net, o.algo, o.true_cycle, o.replay});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: deadlockable rows show a True Cycle whose "
               "replay deadlocks;\ndeadlock-free rows have no True Cycle and "
               "survive stress.\n";
  return 0;
}
