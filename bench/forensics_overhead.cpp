// EXP-FORENSICS — cost of the deadlock-forensics layer (BENCH_obs.json).
//
// The flight recorder ships ON by default (SimConfig::flight_capacity =
// 1024), so the headline number is FlightOn vs FlightOff on a healthy
// workload: two counter bumps and a 24-byte store per channel event, which
// should be noise next to the allocator sweep.  The rest prices the pieces
// that only run on the failure path — postmortem capture at deadlock and the
// static cross-reference — plus the profiler scope the analysis layers use.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

sim::SimConfig healthy_workload() {
  sim::SimConfig cfg;
  cfg.injection_rate = 0.25;
  cfg.packet_length = 8;
  cfg.buffer_depth = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1000;
  cfg.drain_cycles = 4000;
  cfg.seed = 31;
  return cfg;
}

/// A 1-VC unidirectional ring under unrestricted minimal routing: the
/// canonical non-certified config (PR-3) that wedges quickly.
sim::SimConfig wedge_workload() {
  sim::SimConfig cfg;
  cfg.injection_rate = 0.8;
  cfg.packet_length = 12;
  cfg.buffer_depth = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = 15000;
  cfg.drain_cycles = 8000;
  cfg.deadlock_check_interval = 64;
  cfg.seed = 7;
  return cfg;
}

void BM_SimulateFlightOff(benchmark::State& state) {
  const auto topo = topology::make_mesh({8, 8}, 2);
  const auto routing = core::make_algorithm("duato-mesh", topo);
  for (auto _ : state) {
    sim::SimConfig cfg = healthy_workload();
    cfg.flight_capacity = 0;
    const sim::SimStats stats = sim::run(topo, *routing, cfg);
    benchmark::DoNotOptimize(stats.packets_delivered);
  }
}
BENCHMARK(BM_SimulateFlightOff)->Unit(benchmark::kMillisecond);

void BM_SimulateFlightOn(benchmark::State& state) {
  const auto topo = topology::make_mesh({8, 8}, 2);
  const auto routing = core::make_algorithm("duato-mesh", topo);
  std::uint64_t events = 0;
  for (auto _ : state) {
    const sim::SimConfig cfg = healthy_workload();  // default capacity 1024
    const sim::SimStats stats = sim::run(topo, *routing, cfg);
    benchmark::DoNotOptimize(stats.packets_delivered);
    events = stats.flight_events_recorded;
  }
  state.counters["events/run"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateFlightOn)->Unit(benchmark::kMillisecond);

void BM_FlightRecord(benchmark::State& state) {
  obs::FlightRecorder recorder(1024);
  obs::FlightEvent event;
  event.kind = obs::FlightKind::kAcquire;
  event.packet = 3;
  event.channel = 5;
  for (auto _ : state) {
    ++event.cycle;
    recorder.record(event);
    benchmark::DoNotOptimize(recorder.recorded());
  }
}
BENCHMARK(BM_FlightRecord);

void BM_DeadlockPostmortem(benchmark::State& state) {
  // End-to-end price of a run that wedges: detection, wait-cycle
  // extraction, and postmortem capture included.
  const auto topo = topology::make_unidirectional_ring(8, 1);
  const routing::UnrestrictedMinimal routing(topo);
  std::uint64_t postmortems = 0;
  for (auto _ : state) {
    sim::Simulator simulator(topo, routing, wedge_workload());
    const sim::SimStats stats = simulator.run();
    benchmark::DoNotOptimize(stats.deadlocked);
    postmortems = simulator.postmortems().size();
  }
  state.counters["postmortems/run"] = static_cast<double>(postmortems);
}
BENCHMARK(BM_DeadlockPostmortem)->Unit(benchmark::kMillisecond);

void BM_CrossReference(benchmark::State& state) {
  // Lifting a captured runtime cycle into the static CDG / extended CDG.
  const auto topo = topology::make_unidirectional_ring(8, 1);
  const routing::UnrestrictedMinimal routing(topo);
  sim::Simulator simulator(topo, routing, wedge_workload());
  (void)simulator.run();
  if (simulator.postmortems().empty()) {
    state.SkipWithError("wedge workload did not deadlock");
    return;
  }
  const obs::RuntimePostmortem pm = simulator.postmortems().front();
  const cdg::StateGraph states(topo, routing);
  const cdg::SearchResult search = cdg::search(states);
  for (auto _ : state) {
    const obs::PostmortemReport report =
        obs::cross_reference(states, search, pm, "ring:8", "unrestricted");
    benchmark::DoNotOptimize(report.contradiction);
  }
}
BENCHMARK(BM_CrossReference)->Unit(benchmark::kMicrosecond);

void BM_ProfilerScope(benchmark::State& state) {
  obs::Profiler profiler;
  for (auto _ : state) {
    obs::Profiler::Scope scope(&profiler, "bench.phase");
    benchmark::DoNotOptimize(&profiler);
  }
}
BENCHMARK(BM_ProfilerScope);

void BM_ProfilerScopeDisabled(benchmark::State& state) {
  // The shipping default: a null profiler must cost one branch, no clock.
  for (auto _ : state) {
    obs::Profiler::Scope scope(nullptr, "bench.phase");
    benchmark::DoNotOptimize(&scope);
  }
}
BENCHMARK(BM_ProfilerScopeDisabled);

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark only honours a JSON file reporter when --benchmark_out
  // is set, so default it here; flags later in argv (user-supplied) win.
  std::string out_flag = "--benchmark_out=BENCH_obs.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
