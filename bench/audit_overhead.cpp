// EXP-AUDIT — cost of proof-carrying verification (BENCH_audit.json).
//
// Three prices, per registry configuration: the bare verdict (what a sweep
// paid before certificates existed), verdict + certificate emission (what
// --certify-out pays per cache miss), and the independent audit of an
// emitted certificate (what wormnet-audit / WN021 pay per re-validation).
// Emission rides the checker's own structures, so its overhead should be a
// modest constant factor; the audit is a separate O(V+E) pass per
// destination, bounded by the same asymptotics as building the graphs the
// checker searched — the point of the numbers here is to keep both claims
// honest.  JSON serialize/parse round-trip is priced separately: it is the
// persistence cost, not the verification cost.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

struct Config {
  const char* label;
  const char* topology;
  const char* routing;
};

/// Certified registry configs spanning the topology families (ring with
/// dateline VCs, torus and mesh under layered Duato constructions).
constexpr Config kConfigs[] = {
    {"ring8x2_dateline", "ring:8:2", "dateline"},
    {"torus4x4_duato", "torus:4x4:3", "duato-torus"},
    {"mesh4x4_duato", "mesh:4x4:2", "duato-mesh"},
};

core::VerifyOptions duato_options() {
  core::VerifyOptions options;
  options.method = core::Method::kDuato;
  return options;
}

void BM_VerifyBare(benchmark::State& state) {
  const Config& cfg = kConfigs[state.range(0)];
  const topology::Topology topo = core::make_topology(cfg.topology);
  const auto routing = core::make_algorithm(cfg.routing, topo);
  for (auto _ : state) {
    const core::Verdict verdict = core::verify(topo, *routing, duato_options());
    benchmark::DoNotOptimize(verdict.conclusion);
  }
  state.SetLabel(cfg.label);
}
BENCHMARK(BM_VerifyBare)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_VerifyCertified(benchmark::State& state) {
  const Config& cfg = kConfigs[state.range(0)];
  const topology::Topology topo = core::make_topology(cfg.topology);
  const auto routing = core::make_algorithm(cfg.routing, topo);
  std::size_t cert_bytes = 0;
  for (auto _ : state) {
    const core::CertifiedVerdict result =
        core::verify_certified(topo, *routing, duato_options());
    benchmark::DoNotOptimize(result.verdict.conclusion);
    cert_bytes = result.certificate ? result.certificate->to_json().size() : 0;
  }
  state.SetLabel(cfg.label);
  state.counters["cert_bytes"] = static_cast<double>(cert_bytes);
}
BENCHMARK(BM_VerifyCertified)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_AuditCertificate(benchmark::State& state) {
  const Config& cfg = kConfigs[state.range(0)];
  const topology::Topology topo = core::make_topology(cfg.topology);
  const auto routing = core::make_algorithm(cfg.routing, topo);
  const core::CertifiedVerdict result =
      core::verify_certified(topo, *routing, duato_options());
  if (!result.certificate) {
    state.SkipWithError("configuration did not emit a certificate");
    return;
  }
  std::uint64_t edges = 0;
  for (auto _ : state) {
    const audit::AuditResult audit =
        audit::check(topo, *routing, *result.certificate);
    benchmark::DoNotOptimize(audit.code);
    edges = audit.edges_checked;
  }
  state.SetLabel(cfg.label);
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_AuditCertificate)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

void BM_CertificateJsonRoundTrip(benchmark::State& state) {
  const Config& cfg = kConfigs[state.range(0)];
  const topology::Topology topo = core::make_topology(cfg.topology);
  const auto routing = core::make_algorithm(cfg.routing, topo);
  const core::CertifiedVerdict result =
      core::verify_certified(topo, *routing, duato_options());
  if (!result.certificate) {
    state.SkipWithError("configuration did not emit a certificate");
    return;
  }
  for (auto _ : state) {
    const std::string json = result.certificate->to_json();
    const audit::ParseResult parsed = audit::parse_certificate(json);
    benchmark::DoNotOptimize(parsed.certificate.has_value());
  }
  state.SetLabel(cfg.label);
}
BENCHMARK(BM_CertificateJsonRoundTrip)
    ->DenseRange(0, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark only honours a JSON file reporter when --benchmark_out
  // is set, so default it here; flags later in argv (user-supplied) win.
  std::string out_flag = "--benchmark_out=BENCH_audit.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
