// EXP-E — degree of adaptiveness vs hypercube dimension (the Figure-5 shape
// of the companion text).
//
// For each hypercube dimension, the average fraction of VC-labelled minimal
// paths each algorithm permits: e-cube (deterministic), Duato's fully
// adaptive (dimension-order escape), and the Enhanced Fully Adaptive
// algorithm (partially adaptive escape).  Expected: enhanced > duato >
// e-cube at every dimension, all decreasing, e-cube never zero.
#include <iostream>

#include "wormnet/wormnet.hpp"

int main() {
  using namespace wormnet;

  util::Table table({"n (cube dim)", "pairs", "e-cube", "duato", "enhanced",
                     "sampled"});
  bool ordering_holds = true;

  for (std::size_t dims = 1; dims <= 10; ++dims) {
    const topology::Topology topo = topology::make_hypercube(dims, 2);
    const routing::DimensionOrder ecube(topo);
    const auto duato = routing::make_duato_hypercube(topo);
    const routing::EnhancedFullyAdaptive enhanced(topo);

    analysis::AdaptivenessOptions options;
    options.pair_budget = 4000;  // exact through 6 dims, sampled beyond
    const auto a = analysis::degree_of_adaptiveness(topo, ecube, options);
    const auto b = analysis::degree_of_adaptiveness(topo, *duato, options);
    const auto c = analysis::degree_of_adaptiveness(topo, enhanced, options);

    if (dims >= 2 && !(c.degree >= b.degree && b.degree >= a.degree)) {
      ordering_holds = false;
    }
    table.add_row({std::to_string(dims), std::to_string(a.pairs),
                   util::fmt_double(a.degree, 4), util::fmt_double(b.degree, 4),
                   util::fmt_double(c.degree, 4), util::fmt_bool(a.sampled)});
  }

  std::cout << "EXP-E: degree of adaptiveness (VC-labelled minimal paths), "
               "2 VCs/link\n\n";
  table.print(std::cout);
  std::cout << "\nordering enhanced >= duato >= e-cube holds at every "
               "dimension >= 2: "
            << util::fmt_bool(ordering_holds) << "\n";
  return ordering_holds ? 0 : 1;
}
