// EXP-C — the headline result: deadlock-free routing with a CYCLIC channel
// dependency graph.
//
// For Duato's fully adaptive construction on mesh, torus and hypercube:
//   * the full CDG has cycles (the classical condition cannot certify it),
//   * the checker finds a connected escape subfunction whose extended CDG —
//     direct AND indirect dependencies — is acyclic (the paper's condition
//     certifies it),
//   * heavy-load simulation delivers every packet.
#include <iostream>

#include "wormnet/wormnet.hpp"

int main() {
  using namespace wormnet;

  // Routing functions keep a pointer to their topology, so the topologies
  // need stable addresses: heap-allocate both.
  struct Case {
    std::unique_ptr<topology::Topology> topo;
    std::unique_ptr<routing::RoutingFunction> routing;
  };
  std::vector<Case> cases;
  {
    auto mesh =
        std::make_unique<topology::Topology>(topology::make_mesh({6, 6}, 2));
    auto routing = routing::make_duato_mesh(*mesh);
    cases.push_back({std::move(mesh), std::move(routing)});
  }
  {
    auto torus =
        std::make_unique<topology::Topology>(topology::make_torus({4, 4}, 3));
    auto routing = routing::make_duato_torus(*torus);
    cases.push_back({std::move(torus), std::move(routing)});
  }
  {
    auto cube =
        std::make_unique<topology::Topology>(topology::make_hypercube(4, 2));
    auto routing = routing::make_duato_hypercube(*cube);
    cases.push_back({std::move(cube), std::move(routing)});
  }

  util::Table table({"topology", "algorithm", "cdg cyclic", "escape set",
                     "direct", "indirect", "ecdg acyclic", "sim @0.8 load"});
  for (const Case& c : cases) {
    const cdg::StateGraph states(*c.topo, *c.routing);
    const auto cdg_graph = cdg::build_cdg(states);
    const cdg::SearchResult search = cdg::search(states);

    sim::SimConfig cfg;
    cfg.injection_rate = 0.8;
    cfg.packet_length = 16;
    cfg.buffer_depth = 2;
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 12000;
    cfg.drain_cycles = 10000;
    cfg.seed = 5;
    const sim::SimStats stats = sim::run(*c.topo, *c.routing, cfg);

    table.add_row(
        {c.topo->name(), c.routing->name(),
         util::fmt_bool(cdg_graph.has_cycle()),
         search.found ? search.report.subfunction_label : "none found",
         std::to_string(search.report.direct_edges),
         std::to_string(search.report.indirect_edges),
         util::fmt_bool(search.found && search.report.acyclic),
         stats.deadlocked ? "DEADLOCK" : "all delivered"});
  }

  std::cout << "EXP-C: cyclic CDG, yet provably deadlock-free (the paper's "
               "condition)\n\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: every row has a cyclic CDG, a found escape "
               "class with acyclic\nextended CDG (nonzero indirect edges), "
               "and a clean simulation.\n";
  return 0;
}
