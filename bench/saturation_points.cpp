// EXP-F2 — saturation throughput, one scalar per (topology, pattern,
// algorithm).
//
// Condenses the EXP-F curves: the binary-searched offered load at which each
// algorithm stops accepting what is offered.  Expected shape: under uniform
// traffic the algorithms are close; under adversarial permutations the
// adaptive construction's saturation point is clearly higher; nothing
// deadlocks.
#include <iostream>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

void sweep(const topology::Topology& topo,
           const std::vector<std::string>& algorithms,
           const std::vector<sim::Pattern>& patterns) {
  struct Cell {
    analysis::SaturationResult result;
  };
  std::vector<Cell> cells(algorithms.size() * patterns.size());
  util::parallel_for(cells.size(), [&](std::size_t i) {
    const std::size_t a = i / patterns.size();
    const std::size_t p = i % patterns.size();
    const auto routing = core::make_algorithm(algorithms[a], topo);
    analysis::SaturationOptions options;
    options.iterations = 6;
    options.base.pattern = patterns[p];
    options.base.packet_length = 8;
    options.base.warmup_cycles = 800;
    options.base.measure_cycles = 2500;
    options.base.drain_cycles = 12000;
    options.base.seed = 4242 + i;
    cells[i].result = analysis::find_saturation(topo, *routing, options);
  });

  std::vector<std::string> headers{"pattern"};
  for (const auto& algo : algorithms) headers.push_back(algo);
  util::Table table(std::move(headers));
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    std::vector<std::string> row{sim::to_string(patterns[p])};
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const auto& result = cells[a * patterns.size() + p].result;
      row.push_back(result.deadlocked
                        ? "DEADLOCK"
                        : util::fmt_double(result.saturation_rate, 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << topo.name() << "  (saturation offered load, flits/node/cycle)\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "EXP-F2: saturation throughput per algorithm\n\n";
  {
    const topology::Topology mesh = topology::make_mesh({8, 8}, 2);
    sweep(mesh, {"e-cube", "west-first", "negative-first", "duato-mesh"},
          {sim::Pattern::kUniform, sim::Pattern::kTranspose,
           sim::Pattern::kBitReverse});
  }
  {
    const topology::Topology torus = topology::make_torus({8, 8}, 3);
    sweep(torus, {"dateline", "duato-torus"},
          {sim::Pattern::kUniform, sim::Pattern::kTornado});
  }
  std::cout << "expected shape: near-parity under uniform; adaptive clearly "
               "ahead under\ntranspose/bit-reverse/tornado; no DEADLOCK "
               "cells.\n";
  return 0;
}
