// EXP-OBS — cost of the observability layer on the simulator hot path.
//
// Three configurations over the same 8x8 mesh / duato-adaptive workload:
//   * baseline        — cfg.trace and cfg.metrics null (the shipping default;
//     each instrumentation site is one never-taken branch);
//   * null-trace      — a NullTraceSink wired in, isolating the cost of
//     materializing TraceEvent records without any serialization;
//   * metrics         — per-epoch channel series + end-of-run scalars.
// The interesting number is baseline vs null-trace: that gap is what every
// untraced user pays for the instrumentation existing at all, and it should
// be indistinguishable from noise.
// Results also land in BENCH_trace.json (google-benchmark JSON schema) so
// the perf trajectory accumulates PR-over-PR next to BENCH_sweep.json.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

sim::SimConfig workload() {
  sim::SimConfig cfg;
  cfg.injection_rate = 0.25;
  cfg.packet_length = 8;
  cfg.buffer_depth = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 1000;
  cfg.drain_cycles = 4000;
  cfg.seed = 31;
  return cfg;
}

void BM_SimulateBaseline(benchmark::State& state) {
  const auto topo = topology::make_mesh({8, 8}, 2);
  const auto routing = core::make_algorithm("duato-mesh", topo);
  for (auto _ : state) {
    const sim::SimStats stats = sim::run(topo, *routing, workload());
    benchmark::DoNotOptimize(stats.packets_delivered);
  }
}
BENCHMARK(BM_SimulateBaseline)->Unit(benchmark::kMillisecond);

void BM_SimulateNullTrace(benchmark::State& state) {
  const auto topo = topology::make_mesh({8, 8}, 2);
  const auto routing = core::make_algorithm("duato-mesh", topo);
  std::uint64_t events = 0;
  for (auto _ : state) {
    obs::NullTraceSink sink;
    sim::SimConfig cfg = workload();
    cfg.trace = &sink;
    const sim::SimStats stats = sim::run(topo, *routing, cfg);
    benchmark::DoNotOptimize(stats.packets_delivered);
    events = sink.count();
  }
  state.counters["events/run"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateNullTrace)->Unit(benchmark::kMillisecond);

void BM_SimulateMetrics(benchmark::State& state) {
  const auto topo = topology::make_mesh({8, 8}, 2);
  const auto routing = core::make_algorithm("duato-mesh", topo);
  for (auto _ : state) {
    obs::MetricsRegistry metrics;
    sim::SimConfig cfg = workload();
    cfg.metrics = &metrics;
    const sim::SimStats stats = sim::run(topo, *routing, cfg);
    benchmark::DoNotOptimize(stats.packets_delivered);
    benchmark::DoNotOptimize(metrics.empty());
  }
}
BENCHMARK(BM_SimulateMetrics)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark only honours a JSON file reporter when --benchmark_out
  // is set, so default it here; flags later in argv (user-supplied) win.
  std::string out_flag = "--benchmark_out=BENCH_trace.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
