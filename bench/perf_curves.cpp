// EXP-F — latency and accepted throughput vs offered load.
//
// The performance payoff the adaptive-routing literature reports: under
// uniform traffic deterministic and adaptive algorithms are comparable, but
// under adversarial patterns (transpose, hotspot) the adaptive algorithm
// sustains visibly higher accepted throughput and saturates later.  One
// table per (topology, traffic pattern); rows are injection rates, columns
// are algorithms.  All simulations for a table run in parallel.
#include <iostream>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

struct Cell {
  sim::SimStats stats;
};

void sweep(const topology::Topology& topo,
           const std::vector<std::string>& algorithms, sim::Pattern pattern,
           const std::vector<double>& rates) {
  std::vector<Cell> cells(algorithms.size() * rates.size());
  util::parallel_for(cells.size(), [&](std::size_t i) {
    const std::size_t a = i / rates.size();
    const std::size_t r = i % rates.size();
    const auto routing = core::make_algorithm(algorithms[a], topo);
    sim::SimConfig cfg;
    cfg.injection_rate = rates[r];
    cfg.packet_length = 8;
    cfg.buffer_depth = 4;
    cfg.pattern = pattern;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 4000;
    cfg.drain_cycles = 20000;
    cfg.seed = 1000 + i;
    cells[i].stats = sim::run(topo, *routing, cfg);
  });

  std::vector<std::string> headers{"rate"};
  for (const auto& algo : algorithms) {
    headers.push_back(algo + " lat");
    headers.push_back(algo + " thr");
  }
  util::Table table(std::move(headers));
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row{util::fmt_double(rates[r], 2)};
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const sim::SimStats& stats = cells[a * rates.size() + r].stats;
      if (stats.deadlocked) {
        row.push_back("DEADLOCK");
      } else if (stats.saturated) {
        row.push_back("sat");
      } else {
        row.push_back(util::fmt_double(stats.avg_latency, 1));
      }
      row.push_back(util::fmt_double(stats.accepted_throughput, 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << topo.name() << " / " << sim::to_string(pattern)
            << "  (lat = avg packet latency in cycles, thr = accepted "
               "flits/node/cycle)\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "EXP-F: latency & accepted throughput vs offered load\n\n";

  {
    const topology::Topology mesh = topology::make_mesh({8, 8}, 2);
    const std::vector<std::string> algos{"e-cube", "west-first", "duato-mesh"};
    const std::vector<double> rates{0.05, 0.15, 0.25, 0.35, 0.45, 0.55};
    sweep(mesh, algos, sim::Pattern::kUniform, rates);
    sweep(mesh, algos, sim::Pattern::kTranspose, rates);
    sweep(mesh, algos, sim::Pattern::kHotspot,
          {0.05, 0.10, 0.15, 0.20, 0.25});
  }
  {
    const topology::Topology torus = topology::make_torus({8, 8}, 3);
    const std::vector<std::string> algos{"dateline", "duato-torus"};
    sweep(torus, algos, sim::Pattern::kUniform,
          {0.05, 0.15, 0.25, 0.35, 0.45});
    sweep(torus, algos, sim::Pattern::kTornado, {0.05, 0.15, 0.25, 0.35});
  }
  {
    const topology::Topology cube = topology::make_hypercube(6, 2);
    const std::vector<std::string> algos{"e-cube", "duato-hypercube",
                                         "enhanced"};
    sweep(cube, algos, sim::Pattern::kUniform, {0.05, 0.15, 0.30, 0.45});
    sweep(cube, algos, sim::Pattern::kBitComplement, {0.05, 0.15, 0.25});
  }

  std::cout << "expected shape: comparable latency at low load; adaptive "
               "algorithms saturate\nat higher rates than deterministic ones, "
               "most visibly under transpose/tornado/\nbit-complement; no "
               "DEADLOCK cells anywhere.\n";
  return 0;
}
