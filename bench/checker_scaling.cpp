// EXP-G — checker cost scaling (google-benchmark).
//
// Wall-clock cost of the analysis pipeline as the network grows: reachable-
// state construction, CDG build + acyclicity, extended-CDG build for the
// canonical escape class, the full subfunction search, and CWG construction.
// Expected: polynomial growth for the graph builders; the subfunction search
// is dominated by its (constant-count) VC-class candidates on these inputs.
#include <benchmark/benchmark.h>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

topology::Topology mesh_for(std::int64_t k) {
  return topology::make_mesh(
      {static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(k)}, 2);
}

void BM_StateGraph(benchmark::State& state) {
  const auto topo = mesh_for(state.range(0));
  const auto routing = routing::make_duato_mesh(topo);
  for (auto _ : state) {
    cdg::StateGraph states(topo, *routing);
    benchmark::DoNotOptimize(states.num_reachable_states());
  }
  state.SetComplexityN(topo.num_nodes());
}
BENCHMARK(BM_StateGraph)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Complexity();

void BM_BuildCdg(benchmark::State& state) {
  const auto topo = mesh_for(state.range(0));
  const auto routing = routing::make_duato_mesh(topo);
  const cdg::StateGraph states(topo, *routing);
  for (auto _ : state) {
    auto cdg_graph = cdg::build_cdg(states);
    benchmark::DoNotOptimize(cdg_graph.num_edges());
  }
  state.SetComplexityN(topo.num_nodes());
}
BENCHMARK(BM_BuildCdg)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Complexity();

void BM_ExtendedCdg(benchmark::State& state) {
  const auto topo = mesh_for(state.range(0));
  const auto routing = routing::make_duato_mesh(topo);
  const cdg::StateGraph states(topo, *routing);
  std::vector<bool> c1(topo.num_channels(), false);
  for (topology::ChannelId c = 0; c < topo.num_channels(); ++c) {
    if (topo.channel(c).vc == 0) c1[c] = true;
  }
  const cdg::Subfunction sub(states, c1, "vc0");
  for (auto _ : state) {
    auto ecdg = cdg::build_extended_cdg(sub);
    benchmark::DoNotOptimize(ecdg.graph.num_edges());
  }
  state.SetComplexityN(topo.num_nodes());
}
BENCHMARK(BM_ExtendedCdg)->Arg(4)->Arg(6)->Arg(8)->Complexity();

void BM_DuatoSearch(benchmark::State& state) {
  const auto topo = mesh_for(state.range(0));
  const auto routing = routing::make_duato_mesh(topo);
  for (auto _ : state) {
    const cdg::StateGraph states(topo, *routing);
    auto result = cdg::search(states);
    benchmark::DoNotOptimize(result.found);
  }
  state.SetComplexityN(topo.num_nodes());
}
BENCHMARK(BM_DuatoSearch)->Arg(4)->Arg(6)->Arg(8)->Complexity();

void BM_CwgBuild(benchmark::State& state) {
  const auto topo = mesh_for(state.range(0));
  const routing::HighestPositiveLast routing(topo, /*nonminimal=*/false);
  const cdg::StateGraph states(topo, routing);
  for (auto _ : state) {
    auto graph = cwg::build_cwg(states);
    benchmark::DoNotOptimize(graph.graph.num_edges());
  }
  state.SetComplexityN(topo.num_nodes());
}
BENCHMARK(BM_CwgBuild)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Complexity();

void BM_HypercubeSearch(benchmark::State& state) {
  const auto topo =
      topology::make_hypercube(static_cast<std::size_t>(state.range(0)), 2);
  const auto routing = routing::make_duato_hypercube(topo);
  for (auto _ : state) {
    const cdg::StateGraph states(topo, *routing);
    auto result = cdg::search(states);
    benchmark::DoNotOptimize(result.found);
  }
  state.SetComplexityN(topo.num_nodes());
}
BENCHMARK(BM_HypercubeSearch)->Arg(2)->Arg(3)->Arg(4)->Complexity();

void BM_SimulationCycle(benchmark::State& state) {
  // Cost per simulated cycle at moderate load on an 8x8 mesh.
  const auto topo = mesh_for(8);
  const auto routing = routing::make_duato_mesh(topo);
  sim::SimConfig cfg;
  cfg.injection_rate = 0.3;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = static_cast<std::uint64_t>(state.range(0));
  cfg.drain_cycles = 0;
  cfg.deadlock_check_interval = 256;
  for (auto _ : state) {
    auto stats = sim::run(topo, *routing, cfg);
    benchmark::DoNotOptimize(stats.packets_delivered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationCycle)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
