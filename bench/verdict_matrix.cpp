// EXP-A — the verdict matrix.
//
// For every applicable (topology, algorithm) pair, runs all four
// verification methods (classic acyclic-CDG, the paper's necessary-and-
// sufficient condition, the waiting-graph conditions, and stress
// simulation) and prints one row per pair.  The headline property: the
// columns never contradict each other — a "deadlock-free" proof is never
// paired with an observed deadlock, and vice versa.
#include <iostream>
#include <mutex>

#include "wormnet/wormnet.hpp"

namespace {

using namespace wormnet;

struct Row {
  std::string topo;
  std::string algo;
  core::FullReport report;
};

std::string brief(const core::Verdict& verdict) {
  switch (verdict.conclusion) {
    case core::Conclusion::kDeadlockFree:
      return "free";
    case core::Conclusion::kDeadlockable:
      return "DEADLOCK";
    case core::Conclusion::kUnknown:
      return "-";
  }
  return "?";
}

}  // namespace

int main() {
  std::vector<topology::Topology> topologies;
  topologies.push_back(topology::make_mesh({4, 4}, 1));
  topologies.push_back(topology::make_mesh({4, 4}, 2));
  topologies.push_back(topology::make_torus({4, 4}, 3));
  topologies.push_back(topology::make_cylinder({4, 4}, {false, true}, 3));
  topologies.push_back(topology::make_hypercube(3, 2));
  topologies.push_back(topology::make_unidirectional_ring(4, 2));
  topologies.push_back(topology::make_unidirectional_ring(4, 1));
  topologies.push_back(routing::make_incoherent_net());

  // Collect work items.
  struct Item {
    const topology::Topology* topo;
    const core::AlgorithmEntry* entry;
  };
  std::vector<Item> items;
  for (const auto& topo : topologies) {
    for (const core::AlgorithmEntry* entry : core::algorithms_for(topo)) {
      items.push_back({&topo, entry});
    }
  }

  std::vector<Row> rows(items.size());
  util::parallel_for(items.size(), [&](std::size_t i) {
    const auto& [topo, entry] = items[i];
    const auto routing = entry->make(*topo);
    core::VerifyOptions options;
    options.sim.injection_rate = 0.9;
    options.sim.packet_length = 24;
    options.sim.buffer_depth = 1;
    options.sim.warmup_cycles = 0;
    options.sim.measure_cycles = 15000;
    options.sim.drain_cycles = 8000;
    options.sim.seed = 7;
    options.cwg.max_cycles = 400;
    options.cwg.classify.max_paths_per_edge = 16;
    core::FullReport report = core::verify_all(*topo, *routing, options);
    // Deadlock hunting is seed-sensitive; give the simulator a few tries
    // before conceding "no deadlock observed".
    for (std::uint64_t seed = 8;
         seed < 12 &&
         report.simulation.conclusion != core::Conclusion::kDeadlockable;
         ++seed) {
      options.sim.seed = seed;
      options.method = core::Method::kSimulation;
      report.simulation = core::verify(*topo, *routing, options);
    }
    rows[i] = Row{topo->name(), entry->name, std::move(report)};
  });

  util::Table table({"topology", "algorithm", "cdg-acyclic", "duato-n&s",
                     "cwg", "msg-flow", "simulation", "consistent"});
  bool all_consistent = true;
  for (const Row& row : rows) {
    const bool ok = row.report.consistent();
    all_consistent = all_consistent && ok;
    table.add_row({row.topo, row.algo, brief(row.report.cdg),
                   brief(row.report.duato), brief(row.report.cwg),
                   brief(row.report.message_flow),
                   brief(row.report.simulation), util::fmt_bool(ok)});
  }
  std::cout << "EXP-A: verdict matrix (static conditions vs simulation)\n\n";
  table.print(std::cout);
  std::cout << "\nlegend: free = proven deadlock-free, DEADLOCK = proven/"
               "observed deadlockable,\n        - = method cannot decide "
               "(adaptive CDG cycles, search budget, or no deadlock seen)\n";
  std::cout << "\nall rows consistent: " << util::fmt_bool(all_consistent)
            << "\n";
  return all_consistent ? 0 : 1;
}
