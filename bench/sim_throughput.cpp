// EXP-SIMCORE — raw simulator throughput trajectory (BENCH_sim.json).
//
// The flit-level simulator is the engine behind every dynamic verdict in the
// repo (sweep points, fault campaigns, witness replays), so its raw speed is
// tracked PR over PR alongside the checker and sweep benches.  Each benchmark
// runs a full warmup/measure/drain schedule on a registry-canonical
// deadlock-free adaptive algorithm and reports two rate counters:
//
//   cycles_per_sec — simulated cycles retired per wall-second
//   flits_per_sec  — flit-moves (link traversals + ejections) per wall-second
//
// over the grid {ring:8, mesh:8x8, torus:16x16} x {0.1, 0.5, 0.9} offered
// load.  The 16x16 torus at 0.1 load is the headline cell: at sub-saturation
// load on a large network, a polled core wastes most of its per-cycle scan on
// idle channels, which is exactly what the event-driven core (DESIGN 3.11)
// eliminates.  The committed BENCH_sim.json is the regression baseline for
// the CI perf-smoke job (> 20% throughput drop fails the build).
//
// The flight recorder stays at its shipping default (on, 1024 slots): the
// bench prices the configuration users actually run.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "wormnet/core/registry.hpp"
#include "wormnet/sim/simulator.hpp"
#include "wormnet/topology/topology.hpp"

namespace {

using namespace wormnet;

struct Workload {
  const char* name;     ///< benchmark label
  const char* topology; ///< registry topology spec
  const char* routing;  ///< registry algorithm (deadlock-free on the topo)
};

constexpr Workload kWorkloads[] = {
    {"ring8", "ring:8:2", "dateline"},
    {"mesh8x8", "mesh:8x8:2", "duato-mesh"},
    {"torus16x16", "torus:16x16:3", "duato-torus"},
};

constexpr double kLoads[] = {0.1, 0.5, 0.9};

sim::SimConfig throughput_config(double load) {
  sim::SimConfig cfg;
  cfg.injection_rate = load;
  cfg.packet_length = 8;
  cfg.buffer_depth = 4;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 2000;
  cfg.drain_cycles = 8000;
  cfg.seed = 99;
  return cfg;
}

void BM_SimThroughput(benchmark::State& state, const Workload& workload,
                      double load) {
  const topology::Topology topo = core::make_topology(workload.topology);
  const auto routing = core::make_algorithm(workload.routing, topo);
  const sim::SimConfig cfg = throughput_config(load);

  std::uint64_t cycles = 0;
  std::uint64_t flits = 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    sim::Simulator simulator(topo, *routing, cfg);
    const sim::SimStats stats = simulator.run();
    benchmark::DoNotOptimize(stats.packets_delivered);
    cycles += stats.cycles_run;
    flits += simulator.total_flit_moves();
    delivered += stats.packets_delivered;
  }
  state.counters["cycles_per_sec"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flits_per_sec"] = benchmark::Counter(
      static_cast<double>(flits), benchmark::Counter::kIsRate);
  state.counters["delivered"] = benchmark::Counter(
      static_cast<double>(delivered) /
      static_cast<double>(state.iterations()));
}

void register_benchmarks() {
  for (const Workload& workload : kWorkloads) {
    for (const double load : kLoads) {
      std::string name = std::string("BM_SimThroughput/") + workload.name +
                         "/load:" + std::to_string(load).substr(0, 3);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [&workload, load](benchmark::State& state) {
            BM_SimThroughput(state, workload, load);
          })
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark only honours a JSON file reporter when --benchmark_out
  // is set, so default it here; flags later in argv (user-supplied) win.
  std::string out_flag = "--benchmark_out=BENCH_sim.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  register_benchmarks();
  int argn = static_cast<int>(args.size());
  benchmark::Initialize(&argn, args.data());
  if (benchmark::ReportUnrecognizedArguments(argn, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
