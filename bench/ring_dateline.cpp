// EXP-B — the canonical ring example (Dally & Seitz).
//
// A unidirectional ring with one virtual channel per link has a cyclic
// channel dependency graph and deadlocks under load; splitting every link
// into two VCs with a dateline breaks the cycle and the checker proves it.
// Prints the dependency-graph shapes, the static verdicts, and the observed
// simulator behaviour for rings of several sizes.
#include <iostream>

#include "wormnet/wormnet.hpp"

int main() {
  using namespace wormnet;

  util::Table table({"ring", "vcs", "algorithm", "cdg edges", "cdg cyclic",
                     "duato verdict", "sim result", "deadlock cycle"});

  for (std::uint32_t nodes : {4u, 6u, 8u}) {
    for (int vcs = 1; vcs <= 2; ++vcs) {
      const topology::Topology topo =
          topology::make_unidirectional_ring(nodes, vcs);
      std::unique_ptr<routing::RoutingFunction> routing;
      if (vcs == 1) {
        routing = std::make_unique<routing::UnrestrictedMinimal>(topo);
      } else {
        routing = std::make_unique<routing::DatelineRouting>(topo);
      }
      const cdg::StateGraph states(topo, *routing);
      const auto cdg_graph = cdg::build_cdg(states);
      const core::Verdict duato =
          core::verify(topo, *routing, {.method = core::Method::kDuato});

      sim::SimConfig cfg;
      cfg.injection_rate = 0.8;
      cfg.packet_length = 3 * nodes;
      cfg.buffer_depth = 2;
      cfg.warmup_cycles = 0;
      cfg.measure_cycles = 20000;
      cfg.drain_cycles = 8000;
      cfg.seed = 11;
      const sim::SimStats stats = sim::run(topo, *routing, cfg);

      std::string cycle_desc = "-";
      if (stats.deadlocked && !stats.deadlock.blocked_channels.empty()) {
        cycle_desc = std::to_string(stats.deadlock.packet_cycle.size()) +
                     " packets @" + std::to_string(stats.deadlock.cycle);
      }
      table.add_row({topo.name(), std::to_string(vcs),
                     std::string(routing->name()),
                     std::to_string(cdg_graph.num_edges()),
                     util::fmt_bool(cdg_graph.has_cycle()),
                     core::to_string(duato.conclusion),
                     stats.deadlocked ? "DEADLOCK" : "all delivered",
                     cycle_desc});
    }
  }

  std::cout << "EXP-B: unidirectional ring, 1 VC vs 2 VC dateline\n\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: every 1-VC row is cyclic + deadlockable + "
               "deadlocks;\nevery 2-VC dateline row is acyclic + proven free "
               "+ delivers everything.\n";
  return 0;
}
