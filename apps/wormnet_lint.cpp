// wormnet-lint: compiler-style static diagnostics for routing functions.
//
//   wormnet-lint --topology mesh:4x4:2 --routing duato
//   wormnet-lint --topology ring:8 --routing minimal-noescape --format json
//   wormnet-lint --topology torus:4x4:3 --routing duato --format sarif \
//                --fail-on warning > lint.sarif
//   wormnet-lint --all-examples
//
// Exit status: 0 = no finding at or above the --fail-on threshold,
//              1 = findings (or, with --all-examples, expectation failures),
//              2 = usage or configuration error.
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "wormnet/core/registry.hpp"
#include "wormnet/lint/engine.hpp"
#include "wormnet/lint/examples.hpp"
#include "wormnet/lint/render.hpp"
#include "wormnet/obs/probe.hpp"

namespace {

using namespace wormnet;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --topology SPEC --routing NAME [options]\n"
      << "       " << argv0 << " --all-examples [options]\n"
      << "       " << argv0 << " --list-rules\n"
      << "\n"
      << "options:\n"
      << "  --topology SPEC     mesh:4x4[:VCS] | torus:8x8[:VCS] |\n"
      << "                      hypercube:N[:VCS] | ring:N[:VCS] |\n"
      << "                      uniring:N[:VCS] | incoherent\n"
      << "  --routing NAME      registry name, or alias 'duato' /\n"
      << "                      'minimal-noescape'\n"
      << "  --format FORMAT     human (default) | json | sarif\n"
      << "  --fail-on LEVEL     error (default) | warning | info | never\n"
      << "  --rules IDS         comma-separated rule ids/names (default all)\n"
      << "  --reconfig-plan P   declare a reconfiguration transition (WN024\n"
      << "                      re-verifies every union epoch); base relation\n"
      << "                      is the --routing name\n"
      << "  --reconfig-target R declare a reconfiguration *target* relation\n"
      << "                      (registry name, optional %HEXMASK); WN025\n"
      << "                      reports when the staging-order planner finds\n"
      << "                      no certified multi-stage path from the\n"
      << "                      --routing relation to it\n"
      << "  --planner-budget N  certifier-call budget for the WN025 planner\n"
      << "                      search (default 64; budget-monotone)\n"
      << "  --all-examples      lint the whole golden example matrix\n"
      << "  --stats             print per-rule timings and checker counters\n"
      << "                      to stderr\n"
      << "  --list-rules        print the rule catalog and exit\n";
  return 2;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topology_spec;
  std::string routing_name;
  std::string format = "human";
  std::string fail_on = "error";
  std::string reconfig_plan;
  std::string reconfig_target;
  std::size_t planner_budget = 0;
  std::vector<std::string> rule_filter;
  bool all_examples = false;
  bool list_rules = false;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--topology") {
      const char* v = value();
      if (v == nullptr) return 2;
      topology_spec = v;
    } else if (arg == "--routing") {
      const char* v = value();
      if (v == nullptr) return 2;
      routing_name = v;
    } else if (arg == "--format") {
      const char* v = value();
      if (v == nullptr) return 2;
      format = v;
    } else if (arg == "--fail-on") {
      const char* v = value();
      if (v == nullptr) return 2;
      fail_on = v;
    } else if (arg == "--rules") {
      const char* v = value();
      if (v == nullptr) return 2;
      rule_filter = split_list(v);
    } else if (arg == "--reconfig-plan") {
      const char* v = value();
      if (v == nullptr) return 2;
      reconfig_plan = v;
    } else if (arg == "--reconfig-target") {
      const char* v = value();
      if (v == nullptr) return 2;
      reconfig_target = v;
    } else if (arg == "--planner-budget") {
      const char* v = value();
      if (v == nullptr) return 2;
      try {
        std::size_t used = 0;
        planner_budget = std::stoull(v, &used);
        if (used != std::strlen(v)) throw std::invalid_argument(v);
      } catch (const std::exception&) {
        std::cerr << argv[0] << ": bad value for " << arg << ": " << v
                  << "\n";
        return 2;
      }
    } else if (arg == "--all-examples") {
      all_examples = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << argv[0] << ": unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }

  if (list_rules) {
    for (const lint::Rule& rule : lint::all_rules()) {
      std::cout << rule.id << "  " << rule.name << "  ["
                << lint::to_string(rule.default_severity) << "]\n"
                << "       " << rule.summary << "\n";
    }
    return 0;
  }

  if (format != "human" && format != "json" && format != "sarif") {
    std::cerr << argv[0] << ": unknown format " << format << "\n";
    return 2;
  }
  lint::Severity threshold = lint::Severity::kError;
  bool never_fail = false;
  if (fail_on == "error") {
    threshold = lint::Severity::kError;
  } else if (fail_on == "warning") {
    threshold = lint::Severity::kWarning;
  } else if (fail_on == "info") {
    threshold = lint::Severity::kInfo;
  } else if (fail_on == "never") {
    never_fail = true;
  } else {
    std::cerr << argv[0] << ": unknown --fail-on level " << fail_on << "\n";
    return 2;
  }

  obs::CheckerStats checker_stats;
  std::vector<lint::LintUnit> units;
  std::vector<std::shared_ptr<topology::Topology>> keep_alive;
  bool expectations_met = true;

  try {
    obs::ProbeScope probe(checker_stats);
    if (all_examples) {
      for (lint::ExampleRun& run : lint::run_examples()) {
        if (!run.passed) {
          expectations_met = false;
          std::cerr << "expectation failed: " << run.subject << ": "
                    << run.failure << "\n";
        }
        keep_alive.push_back(run.topo);
        lint::LintUnit unit;
        unit.subject = std::move(run.subject);
        unit.topo = keep_alive.back().get();
        unit.result = std::move(run.result);
        units.push_back(std::move(unit));
      }
    } else {
      if (topology_spec.empty() || routing_name.empty()) {
        return usage(argv[0]);
      }
      auto topo = std::make_shared<topology::Topology>(
          core::make_topology(topology_spec));
      keep_alive.push_back(topo);
      const auto routing = core::make_algorithm(routing_name, *topo);
      lint::LintOptions options;
      options.rules = rule_filter;
      if (!reconfig_plan.empty() || !reconfig_target.empty()) {
        options.reconfig_plan = reconfig_plan;
        options.reconfig_target = reconfig_target;
        options.planner_budget = planner_budget;
        // The CLI knows the registry name the relation came from; resolve
        // aliases so the compiled plan's base matches the built routing.
        options.reconfig_base =
            core::canonical_algorithm_name(routing_name, *topo);
      }
      lint::LintUnit unit;
      unit.subject = topology_spec + " " + routing->name();
      unit.topo = topo.get();
      unit.result = lint::run_lint(*topo, *routing, options);
      units.push_back(std::move(unit));
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 2;
  }

  if (format == "human") {
    lint::render_human(std::cout, units, stats);
  } else if (format == "json") {
    lint::render_jsonl(std::cout, units);
  } else {
    lint::render_sarif(std::cout, units);
  }
  if (stats) {
    checker_stats.write_json(std::cerr);
    std::cerr << "\n";
  }

  if (all_examples && !expectations_met) return 1;
  if (never_fail) return 0;
  for (const lint::LintUnit& unit : units) {
    if (!unit.result.clean(threshold)) return 1;
  }
  return 0;
}
