// wormnet-audit: the independent certificate auditor CLI.
//
//   wormnet-audit certificate.json
//   wormnet-audit --topology ring:8:2 --routing dateline certificate.json
//   wormnet-sweep --grid "..." --certify-out certs/ && wormnet-audit certs/*.json
//
// Re-validates proof-carrying certificates (emitted by wormnet-sweep
// --certify-out, exp::AnalysisCache, or core::verify_certified) against the
// routing relation they speak about, using only the wormnet::audit trusted
// base — none of the checker code that produced them.  The binding defaults
// to the certificate's own topology/routing/fault-mask fields and can be
// overridden to audit a certificate against a *different* relation (which
// should fail, loudly).
//
// Exit status: 0 = every certificate audits valid,
//              1 = at least one certificate was refuted by the auditor
//                  (well-formed, but the relation does not support it),
//              2 = usage error, unreadable input, malformed certificate
//                  JSON, or a binding that cannot be constructed.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "wormnet/audit/certificate.hpp"
#include "wormnet/audit/check.hpp"
#include "wormnet/core/registry.hpp"
#include "wormnet/ft/fault_plan.hpp"
#include "wormnet/reconfig/transition_plan.hpp"
#include "wormnet/reconfig/union_routing.hpp"
#include "wormnet/routing/fault.hpp"

namespace {

using namespace wormnet;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options] CERT.json [CERT.json ...]\n"
      << "\n"
      << "Audits proof-carrying certificates against the routing relation\n"
      << "they describe, via the independent wormnet::audit checker.\n"
      << "\n"
      << "options:\n"
      << "  --topology SPEC  override the certificate's topology binding\n"
      << "  --routing NAME   override the certificate's routing binding\n"
      << "  --fault-mask HEX override the certificate's fault mask\n"
      << "                   ('' = audit against the pristine relation)\n"
      << "  --transition S   override the certificate's transition binding\n"
      << "                   (a reconfig UnionSpec; '' = pure routing)\n"
      << "  --quiet          only report failures\n"
      << "\n"
      << "exit: 0 = all valid, 1 = refuted by audit, 2 = malformed/usage\n";
  return 2;
}

/// One certificate: parse, bind, audit.  Returns the per-file exit code.
int audit_file(const char* argv0, const std::string& path,
               const std::string& topo_override,
               const std::string& routing_override,
               const std::string& mask_override, bool mask_overridden,
               const std::string& transition_override,
               bool transition_overridden, bool quiet) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << argv0 << ": cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();

  const audit::ParseResult parsed = audit::parse_certificate(buffer.str());
  if (!parsed.certificate.has_value()) {
    std::cerr << argv0 << ": " << path << ": malformed certificate: "
              << parsed.error << "\n";
    return 2;
  }
  const audit::Certificate& cert = *parsed.certificate;

  const std::string topo_spec =
      topo_override.empty() ? cert.topology : topo_override;
  const std::string routing_name =
      routing_override.empty() ? cert.routing : routing_override;
  const std::string fault_mask =
      mask_overridden ? mask_override : cert.fault_mask;
  const std::string transition =
      transition_overridden ? transition_override : cert.transition;

  std::unique_ptr<routing::RoutingFunction> routing;
  std::unique_ptr<topology::Topology> topo;
  try {
    topo = std::make_unique<topology::Topology>(core::make_topology(topo_spec));
    if (!transition.empty()) {
      // The certificate speaks about a reconfiguration epoch's union
      // relation; the persisted UnionSpec rebuilds it member by member.
      // A composed certificate (fault x reconfig, DESIGN 3.13) carries a
      // fault mask as well — the bound relation is the union degraded by
      // that mask, in that order.
      routing = reconfig::make_union_routing(
          *topo, reconfig::parse_union_spec(transition, topo->num_nodes()));
      if (!fault_mask.empty()) {
        routing = std::make_unique<routing::FaultAwareRouting>(
            *topo, std::move(routing),
            ft::mask_from_hex(fault_mask, topo->num_channels()));
      }
    } else {
      routing = core::make_algorithm(routing_name, *topo);
      if (!fault_mask.empty()) {
        routing = std::make_unique<routing::FaultAwareRouting>(
            *topo, std::move(routing),
            ft::mask_from_hex(fault_mask, topo->num_channels()));
      }
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << argv0 << ": " << path << ": cannot construct binding "
              << topo_spec << " / " << routing_name << ": " << e.what()
              << "\n";
    return 2;
  }

  const audit::AuditResult result = audit::check(*topo, *routing, cert);
  if (!result.ok()) {
    std::cerr << path << ": REFUTED BY AUDIT ["
              << audit::to_string(result.code) << "] " << result.detail
              << "\n";
    return 1;
  }
  if (!quiet) {
    std::cout << path << ": valid " << audit::to_string(cert.kind) << " ("
              << cert.method << ", " << topo_spec << " / " << routing_name
              << (fault_mask.empty() ? "" : ", mask " + fault_mask)
              << (transition.empty() ? "" : ", transition " + transition)
              << "; " << result.states_checked << " states, "
              << result.edges_checked << " edges checked)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_override;
  std::string routing_override;
  std::string mask_override;
  bool mask_overridden = false;
  std::string transition_override;
  bool transition_overridden = false;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--topology") {
      const char* v = value();
      if (v == nullptr) return 2;
      topo_override = v;
    } else if (arg == "--routing") {
      const char* v = value();
      if (v == nullptr) return 2;
      routing_override = v;
    } else if (arg == "--fault-mask") {
      const char* v = value();
      if (v == nullptr) return 2;
      mask_override = v;
      mask_overridden = true;
    } else if (arg == "--transition") {
      const char* v = value();
      if (v == nullptr) return 2;
      transition_override = v;
      transition_overridden = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option " << arg << "\n";
      return usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(argv[0]);

  // Severity-max fold: malformed (2) dominates refuted (1) dominates valid.
  int exit_code = 0;
  for (const std::string& path : paths) {
    exit_code = std::max(
        exit_code, audit_file(argv[0], path, topo_override, routing_override,
                              mask_override, mask_overridden,
                              transition_override, transition_overridden,
                              quiet));
  }
  return exit_code;
}
