// wormnet-explain: render a deadlock postmortem artifact as a human-readable
// blame report.
//
//   wormnet-explain postmortem_3_0.json
//   wormnet-sweep --grid "topo=ring:8;routing=unrestricted;load=0.4" \
//                 --postmortem-dir pm && wormnet-explain pm/postmortem_*.json
//
// The artifact is self-contained (channel names are embedded by
// write_postmortem_json), so this tool deliberately does NOT link the
// analysis layers: it is a pure JSON reader, usable on artifacts produced by
// a different build or shipped from another machine.  The parser below is a
// minimal recursive-descent reader of the JSON subset our writers emit.
//
// Exit status: 0 = rendered, 1 = the artifact flags a theorem contradiction
// (a Duato-certified configuration with an escape-confined runtime cycle),
// 2 = usage or parse error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers, booleans,
// null) — just enough for postmortem artifacts.
// ---------------------------------------------------------------------------

struct JValue;
using JObject = std::map<std::string, std::shared_ptr<JValue>>;
using JArray = std::vector<std::shared_ptr<JValue>>;

struct JValue {
  std::variant<std::nullptr_t, bool, double, std::string, JArray, JObject> v =
      nullptr;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::shared_ptr<JValue> parse() {
    auto value = parse_value();
    skip_ws();
    return value;
  }

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

 private:
  std::shared_ptr<JValue> fail(const std::string& what) {
    if (!failed_) {
      failed_ = true;
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return std::make_shared<JValue>();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  std::shared_ptr<JValue> parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto out = std::make_shared<JValue>();
        out->v = parse_string();
        return out;
      }
      case 't':
      case 'f': return parse_literal();
      case 'n': return parse_literal();
      default: return parse_number();
    }
  }

  std::shared_ptr<JValue> parse_object() {
    auto out = std::make_shared<JValue>();
    JObject obj;
    if (!consume('{')) return fail("expected '{'");
    if (!consume('}')) {
      do {
        if (peek() != '"') return fail("expected object key");
        std::string key = parse_string();
        if (!consume(':')) return fail("expected ':'");
        obj[key] = parse_value();
        if (failed_) return out;
      } while (consume(','));
      if (!consume('}')) return fail("expected '}'");
    }
    out->v = std::move(obj);
    return out;
  }

  std::shared_ptr<JValue> parse_array() {
    auto out = std::make_shared<JValue>();
    JArray arr;
    if (!consume('[')) return fail("expected '['");
    if (!consume(']')) {
      do {
        arr.push_back(parse_value());
        if (failed_) return out;
      } while (consume(','));
      if (!consume(']')) return fail("expected ']'");
    }
    out->v = std::move(arr);
    return out;
  }

  std::string parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return {};
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'r': out += '\r'; break;
          case 'u':
            // Channel names are ASCII; render escapes opaquely.
            if (pos_ + 4 <= text_.size()) pos_ += 4;
            out += '?';
            break;
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) fail("unterminated string");
    return out;
  }

  std::shared_ptr<JValue> parse_literal() {
    auto out = std::make_shared<JValue>();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->v = true;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->v = false;
    } else if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else {
      return fail("bad literal");
    }
    return out;
  }

  std::shared_ptr<JValue> parse_number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return fail("bad number");
    pos_ += static_cast<std::size_t>(end - begin);
    auto out = std::make_shared<JValue>();
    out->v = value;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Typed accessors with friendly defaults (missing optional fields are normal:
// the writer omits them rather than emitting null).
// ---------------------------------------------------------------------------

const std::shared_ptr<JValue> kMissing = std::make_shared<JValue>();

const std::shared_ptr<JValue>& get(const std::shared_ptr<JValue>& v,
                                   const std::string& key) {
  if (const auto* obj = std::get_if<JObject>(&v->v)) {
    const auto it = obj->find(key);
    if (it != obj->end()) return it->second;
  }
  return kMissing;
}

bool has(const std::shared_ptr<JValue>& v, const std::string& key) {
  const auto* obj = std::get_if<JObject>(&v->v);
  return obj != nullptr && obj->count(key) > 0;
}

std::string as_string(const std::shared_ptr<JValue>& v,
                      const std::string& fallback = "?") {
  const auto* s = std::get_if<std::string>(&v->v);
  return s != nullptr ? *s : fallback;
}

double as_number(const std::shared_ptr<JValue>& v) {
  const auto* d = std::get_if<double>(&v->v);
  return d != nullptr ? *d : 0.0;
}

std::uint64_t as_u64(const std::shared_ptr<JValue>& v) {
  return static_cast<std::uint64_t>(as_number(v));
}

bool as_bool(const std::shared_ptr<JValue>& v) {
  const auto* b = std::get_if<bool>(&v->v);
  return b != nullptr && *b;
}

const JArray& as_array(const std::shared_ptr<JValue>& v) {
  static const JArray kEmpty;
  const auto* a = std::get_if<JArray>(&v->v);
  return a != nullptr ? *a : kEmpty;
}

std::string channel_ref(const std::shared_ptr<JValue>& v) {
  if (std::holds_alternative<JObject>(v->v)) {
    return as_string(get(v, "name"));
  }
  return as_string(v);
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

int explain(const std::string& path, std::ostream& os) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "wormnet-explain: cannot open " << path << "\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  JsonParser parser(text);
  const auto root = parser.parse();
  if (parser.failed()) {
    std::cerr << "wormnet-explain: " << path << ": " << parser.error() << "\n";
    return 2;
  }
  const auto& pm = get(root, "postmortem");
  if (!std::holds_alternative<JObject>(pm->v)) {
    std::cerr << "wormnet-explain: " << path
              << ": not a postmortem artifact (no \"postmortem\" object)\n";
    return 2;
  }

  const std::string reason = as_string(get(pm, "reason"));
  const bool certified = as_bool(get(pm, "certified"));
  const bool contradiction = as_bool(get(pm, "contradiction"));

  os << "== Deadlock postmortem: " << path << " ==\n";
  os << "reason     : " << reason << " (sim cycle "
     << as_u64(get(pm, "cycle")) << ")\n";
  os << "config     : " << as_string(get(pm, "topology")) << " / "
     << as_string(get(pm, "routing")) << "\n";
  os << "certified  : " << (certified ? "yes" : "no");
  if (certified) os << "  (escape set: " << as_string(get(pm, "subfunction")) << ")";
  os << "\n";
  if (has(pm, "victim")) {
    os << "victim     : packet " << as_u64(get(pm, "victim"))
       << " (aborted by the recovery policy)\n";
  }

  const JArray& wait_for = as_array(get(pm, "wait_for"));
  os << "\n-- Terminal wait-for graph (" << wait_for.size()
     << " blocked packet" << (wait_for.size() == 1 ? "" : "s") << ") --\n";
  for (const auto& node : wait_for) {
    os << "  packet " << as_u64(get(node, "packet")) << " @ node "
       << as_u64(get(node, "node"));
    if (has(node, "occupies")) {
      os << ", holds " << channel_ref(get(node, "occupies"));
    } else {
      os << ", source-queued";
    }
    os << ", waits on";
    const JArray& waits = as_array(get(node, "waiting_on"));
    for (std::size_t i = 0; i < waits.size(); ++i) {
      os << (i == 0 ? " " : ", ") << channel_ref(waits[i]);
      if (has(waits[i], "owner")) {
        os << " (owner p" << as_u64(get(waits[i], "owner")) << ")";
      } else {
        os << " (free)";
      }
    }
    os << "\n";
  }

  const JArray& cycles = as_array(get(pm, "cycles"));
  for (std::size_t ci = 0; ci < cycles.size(); ++ci) {
    const auto& cycle = cycles[ci];
    const JArray& packets = as_array(get(cycle, "packets"));
    os << "\n-- Runtime wait cycle " << ci + 1 << "/" << cycles.size()
       << " (";
    for (std::size_t i = 0; i < packets.size(); ++i) {
      os << (i == 0 ? "p" : " -> p") << as_u64(packets[i]);
    }
    os << ") --\n";
    for (const auto& hop : as_array(get(cycle, "hops"))) {
      os << "  packet " << as_u64(get(hop, "packet")) << " holds [";
      const JArray& chain = as_array(get(hop, "chain"));
      for (std::size_t i = 0; i < chain.size(); ++i) {
        os << (i == 0 ? "" : " -> ") << channel_ref(chain[i]);
      }
      os << "] and waits for " << channel_ref(get(hop, "waits_for")) << "\n";
    }
    os << "  lifted static channel cycle:\n";
    for (const auto& edge : as_array(get(cycle, "edges"))) {
      os << "    " << as_string(get(edge, "from")) << " -> "
         << as_string(get(edge, "to")) << "  ["
         << (as_bool(get(edge, "in_cdg")) ? "in CDG" : "NOT in CDG") << ", "
         << as_string(get(edge, "kind"));
      if (as_bool(get(edge, "escape"))) os << ", escape";
      os << "]\n";
    }
    os << "  maps onto static CDG: "
       << (as_bool(get(cycle, "maps_to_cdg")) ? "yes" : "NO") << "; "
       << "escape-confined: "
       << (as_bool(get(cycle, "escape_confined")) ? "YES" : "no") << "\n";
  }

  const auto& flight = get(pm, "flight");
  const JArray& tail = as_array(get(flight, "tail"));
  os << "\n-- Flight recorder (last " << tail.size() << " of "
     << as_u64(get(flight, "recorded")) << " events, "
     << as_u64(get(flight, "dropped")) << " dropped by wraparound) --\n";
  for (const auto& ev : tail) {
    os << "  cycle " << as_u64(get(ev, "cycle")) << ": "
       << as_string(get(ev, "kind"));
    if (has(ev, "packet")) os << " p" << as_u64(get(ev, "packet"));
    if (has(ev, "channel")) os << " " << as_string(get(ev, "channel"));
    if (has(ev, "aux")) os << " (aux " << as_u64(get(ev, "aux")) << ")";
    os << "\n";
  }

  os << "\n-- Blame --\n";
  if (contradiction) {
    os << "CONTRADICTION: this configuration is Duato-certified, yet the\n"
          "runtime wait cycle is confined to the escape subfunction's\n"
          "extended CDG.  The theorem says that graph is acyclic, so either\n"
          "the checker or the simulator is wrong.  Treat as a bug.\n";
  } else if (certified) {
    os << "Configuration is Duato-certified and the cycle is NOT confined\n"
          "to escape edges.  A certified config should not deadlock at all —\n"
          "if reason is '" << reason << "' via watchdog this may be\n"
          "saturation rather than true deadlock; otherwise investigate.\n";
  } else {
    os << "Configuration is not Duato-certified: the deadlock is the static\n"
          "CDG cycle shown above, which no escape subfunction breaks.  This\n"
          "is the expected failure mode the paper's condition rules out.\n";
  }
  return contradiction ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::cerr << "usage: " << argv[0] << " POSTMORTEM.json [MORE.json...]\n"
              << "\n"
              << "Renders wormnet-sweep --postmortem-dir artifacts as\n"
              << "human-readable blame reports.  Exit 1 if any artifact\n"
              << "flags a theorem contradiction.\n";
    return argc < 2 ? 2 : 0;
  }
  int worst = 0;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) std::cout << "\n";
    const int rc = explain(argv[i], std::cout);
    if (rc == 2) return 2;
    if (rc > worst) worst = rc;
  }
  return worst;
}
