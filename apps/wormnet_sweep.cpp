// wormnet-sweep: the parallel experiment engine CLI.
//
//   wormnet-sweep --grid "topo=mesh:4x4:2;routing=e-cube,duato;load=0.05:0.45:0.10;reps=4"
//   wormnet-sweep --grid "topo=torus:8x8:3;routing=dateline,duato;pattern=uniform,tornado"
//                 --threads 8 --out csv --output sweep.csv --progress
//   wormnet-sweep --grid "..." --metrics-out metrics.json --cwg
//   wormnet-sweep --grid "topo=mesh:4x4:2;routing=duato;fault=kill:5-6@500"
//                 --recovery abort-retry --retry-budget 4
//
// Output (stdout or --output FILE) is byte-identical for any --threads
// value, including 1 — the determinism contract the test suite pins.
//
// Exit status: 0 = sweep ran (deadlocks on *uncertified* configs are data,
//                  not errors; so are drops on uncertified fault epochs and
//                  deadlocks on uncertified reconfiguration transitions),
//              1 = a certified configuration deadlocked — certified meaning
//                  the pristine pair passed the Duato check AND every fault
//                  epoch's degraded relation AND every transition epoch's
//                  union relation AND every composed fault x reconfig
//                  epoch re-certified (the library contradicting
//                  the theorem — always a bug) — or, with --certify-out, an
//                  emitted certificate failed its own audit (same class of
//                  bug: the checker emitted evidence the relation does not
//                  support),
//              2 = usage or configuration error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "wormnet/audit/check.hpp"
#include "wormnet/cdg/cdg_builder.hpp"
#include "wormnet/cdg/duato_checker.hpp"
#include "wormnet/cdg/states.hpp"
#include "wormnet/core/registry.hpp"
#include "wormnet/ft/fault_plan.hpp"
#include "wormnet/routing/fault.hpp"
#include "wormnet/exp/sweep_io.hpp"
#include "wormnet/exp/sweep_runner.hpp"
#include "wormnet/ft/recovery.hpp"
#include "wormnet/obs/metrics.hpp"
#include "wormnet/obs/postmortem.hpp"
#include "wormnet/obs/profiler.hpp"
#include "wormnet/reconfig/transition_plan.hpp"
#include "wormnet/reconfig/union_routing.hpp"

namespace {

using namespace wormnet;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --grid SPEC [options]\n"
      << "\n"
      << "grid spec: ';'-separated key=value clauses\n"
      << "  topo=mesh:4x4:2,ring:8      topology specs (required)\n"
      << "  routing=e-cube,duato        registry names / aliases (required)\n"
      << "  fault=none,kill:5-6@250     fault plans (default none); events\n"
      << "                              joined by '+': kill/repair:SRC-DST@C,\n"
      << "                              killch/repairch:CH@C, rand:N/SEED@C\n"
      << "  reconfig=none,switch:duato-mesh@500   transition plans (default\n"
      << "                              none); '+'-joined switch:NEW@C,\n"
      << "                              stage:NEW/LO-HI@C, ramp:NEW/K/STRIDE@C\n"
      << "  pattern=uniform,transpose   traffic patterns (default uniform)\n"
      << "  load=0.05,0.2 or lo:hi:step offered loads (default 0.1)\n"
      << "  reps=N                      replications per cell (default 1)\n"
      << "  seed=N                      base seed of the jump chain\n"
      << "\n"
      << "options:\n"
      << "  --threads N        worker threads (default hardware, 1 = inline)\n"
      << "  --out FORMAT       jsonl (default) | csv\n"
      << "  --output FILE      write rows to FILE instead of stdout\n"
      << "  --progress         live done/total counter on stderr\n"
      << "  --cwg              also compute the CWG verdict per pair\n"
      << "  --metrics-out FILE dump sweep.* metrics as JSON\n"
      << "  --warmup/--measure/--drain N   sim methodology cycles\n"
      << "  --packet-length N  flits per packet (default 8)\n"
      << "  --buffer-depth N   flits per VC FIFO (default 4)\n"
      << "  --fault-plan PLAN  shorthand for a single-plan fault axis\n"
      << "                     (equivalent to fault=PLAN in the grid)\n"
      << "  --reconfig-plan P  shorthand for a single-plan reconfiguration\n"
      << "                     axis (equivalent to reconfig=P in the grid)\n"
      << "  --rollback         build a transition guard per reconfig point:\n"
      << "                     refuted composed epochs trigger certified\n"
      << "                     rollback (or drain-then-switch) at runtime\n"
      << "                     instead of running uncertified\n"
      << "  --recovery POLICY  halt (default) | abort-retry | drain\n"
      << "  --retry-budget N   aborts per packet before dropping (default 8)\n"
      << "  --packet-timeout N per-packet no-progress cycles before abort\n"
      << "                     (default 0 = inherit --watchdog)\n"
      << "  --watchdog N       global no-progress threshold (default 4000)\n"
      << "  --certify-out DIR  emit one proof-carrying certificate JSON per\n"
      << "                     analysed pair / fault epoch (audited on write\n"
      << "                     by wormnet::audit; a contradiction exits 1)\n"
      << "  --postmortem-dir D write one JSON per captured deadlock postmortem\n"
      << "                     (postmortem_<point>_<n>.json, cross-referenced\n"
      << "                     against the pair's static CDG; fault points are\n"
      << "                     cross-referenced against the pristine relation;\n"
      << "                     reconfig points additionally classify each edge\n"
      << "                     old-only/new-only/shared and flag cycles that\n"
      << "                     cross the transition union)\n"
      << "  --profile FILE     self-profile the sweep: per-phase wall-time\n"
      << "                     histograms to FILE, plus a point_ms column in\n"
      << "                     the row output (breaks byte-determinism)\n"
      << "  --summary          print the aggregate + timing to stderr\n";
  return 2;
}

/// Memoized static context for postmortem cross-referencing: one state graph
/// and Duato search per (topology spec, routing name) that deadlocked.
struct XrefContext {
  topology::Topology topo;
  std::unique_ptr<routing::RoutingFunction> routing;
  std::unique_ptr<cdg::StateGraph> states;
  cdg::SearchResult search;
};

const XrefContext& xref_context(
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<XrefContext>>& cache,
    const std::string& topo_spec, const std::string& routing_name) {
  auto& slot = cache[{topo_spec, routing_name}];
  if (!slot) {
    auto ctx = std::make_unique<XrefContext>(
        XrefContext{core::make_topology(topo_spec), nullptr, nullptr, {}});
    ctx->routing = core::make_algorithm(routing_name, ctx->topo);
    ctx->states = std::make_unique<cdg::StateGraph>(ctx->topo, *ctx->routing);
    ctx->search = cdg::search(*ctx->states);
    slot = std::move(ctx);
  }
  return *slot;
}

/// Cache keys ("topo|routing" / "topo|routing|mask") become filenames;
/// anything shell- or filesystem-hostile collapses to '_'.
std::string sanitize_key(const std::string& key) {
  std::string out = key;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    if (!keep) c = '_';
  }
  return out;
}

/// Writes every emitted certificate to `dir`, auditing each against the
/// relation it speaks about (degraded via the persisted fault mask) before
/// the bytes land.  Returns the number of audit contradictions.
std::size_t write_certificates(const char* argv0, const std::string& dir,
                               const exp::SweepOutcome& outcome, bool summary,
                               bool& io_ok) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << argv0 << ": cannot create " << dir << ": " << ec.message()
              << "\n";
    io_ok = false;
    return 0;
  }
  std::map<std::string, topology::Topology> topos;
  std::size_t contradictions = 0;
  std::size_t written = 0;
  for (const exp::CertificateRecord& record : outcome.certificates) {
    const audit::Certificate& cert = *record.certificate;
    auto it = topos.find(cert.topology);
    if (it == topos.end()) {
      it = topos.emplace(cert.topology, core::make_topology(cert.topology))
               .first;
    }
    const topology::Topology& topo = it->second;
    std::unique_ptr<routing::RoutingFunction> routing;
    if (!cert.transition.empty()) {
      // Transition-epoch certificates speak about the union relation; the
      // persisted UnionSpec rebuilds it exactly (the base relation is the
      // spec's first member, so cert.routing is informative only).  A
      // composed certificate (DESIGN 3.13) additionally carries the fault
      // mask the epoch ran under — the relation is the union degraded by
      // that mask, in that order.
      routing = reconfig::make_union_routing(
          topo, reconfig::parse_union_spec(cert.transition,
                                           topo.num_nodes()));
      if (!cert.fault_mask.empty()) {
        routing = std::make_unique<routing::FaultAwareRouting>(
            topo, std::move(routing),
            ft::mask_from_hex(cert.fault_mask, topo.num_channels()));
      }
    } else {
      routing = core::make_algorithm(cert.routing, topo);
      if (!cert.fault_mask.empty()) {
        routing = std::make_unique<routing::FaultAwareRouting>(
            topo, std::move(routing),
            ft::mask_from_hex(cert.fault_mask, topo.num_channels()));
      }
    }
    const audit::AuditResult audit = audit::check(topo, *routing, cert);
    if (!audit.ok()) {
      std::cerr << argv0 << ": AUDIT CONTRADICTION for " << record.key << ": "
                << audit::to_string(audit.code) << ": " << audit.detail
                << "\n";
      ++contradictions;
    }
    const std::filesystem::path path =
        std::filesystem::path(dir) / (sanitize_key(record.key) + ".json");
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      std::cerr << argv0 << ": cannot open " << path.string() << "\n";
      io_ok = false;
      return contradictions;
    }
    file << cert.to_json() << "\n";
    ++written;
  }
  if (summary) {
    std::cerr << written << " certificate(s) written to " << dir << " ("
              << contradictions << " audit contradiction(s))\n";
  }
  return contradictions;
}

std::uint64_t parse_u64_arg(const char* argv0, const std::string& flag,
                            const char* text, bool& ok) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(text, &used);
    if (used != std::string(text).size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    std::cerr << argv0 << ": bad value for " << flag << ": " << text << "\n";
    ok = false;
    return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid;
  std::string fault_plan;
  std::string reconfig_plan;
  std::string out_format = "jsonl";
  std::string output_path;
  std::string metrics_path;
  std::string postmortem_dir;
  std::string certify_dir;
  std::string profile_path;
  exp::RunnerOptions runner;
  sim::SimConfig base;
  bool progress = false;
  bool summary = false;
  bool ok = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--grid") {
      const char* v = value();
      if (v == nullptr) return 2;
      grid = v;
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return 2;
      runner.threads = parse_u64_arg(argv[0], arg, v, ok);
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return 2;
      out_format = v;
    } else if (arg == "--output") {
      const char* v = value();
      if (v == nullptr) return 2;
      output_path = v;
    } else if (arg == "--metrics-out") {
      const char* v = value();
      if (v == nullptr) return 2;
      metrics_path = v;
    } else if (arg == "--postmortem-dir") {
      const char* v = value();
      if (v == nullptr) return 2;
      postmortem_dir = v;
    } else if (arg == "--certify-out") {
      const char* v = value();
      if (v == nullptr) return 2;
      certify_dir = v;
      runner.certify = true;
    } else if (arg == "--profile") {
      const char* v = value();
      if (v == nullptr) return 2;
      profile_path = v;
    } else if (arg == "--warmup") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.warmup_cycles = parse_u64_arg(argv[0], arg, v, ok);
    } else if (arg == "--measure") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.measure_cycles = parse_u64_arg(argv[0], arg, v, ok);
    } else if (arg == "--drain") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.drain_cycles = parse_u64_arg(argv[0], arg, v, ok);
    } else if (arg == "--packet-length") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.packet_length =
          static_cast<std::uint32_t>(parse_u64_arg(argv[0], arg, v, ok));
    } else if (arg == "--buffer-depth") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.buffer_depth =
          static_cast<std::uint32_t>(parse_u64_arg(argv[0], arg, v, ok));
    } else if (arg == "--fault-plan") {
      const char* v = value();
      if (v == nullptr) return 2;
      fault_plan = v;
    } else if (arg == "--reconfig-plan") {
      const char* v = value();
      if (v == nullptr) return 2;
      reconfig_plan = v;
    } else if (arg == "--recovery") {
      const char* v = value();
      if (v == nullptr) return 2;
      const auto policy = ft::recovery_from_string(v);
      if (!policy) {
        std::cerr << argv[0] << ": unknown --recovery policy " << v
                  << " (expected halt | abort-retry | drain)\n";
        return 2;
      }
      base.recovery.policy = *policy;
    } else if (arg == "--retry-budget") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.recovery.retry_budget =
          static_cast<std::uint32_t>(parse_u64_arg(argv[0], arg, v, ok));
    } else if (arg == "--packet-timeout") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.recovery.packet_timeout = parse_u64_arg(argv[0], arg, v, ok);
    } else if (arg == "--watchdog") {
      const char* v = value();
      if (v == nullptr) return 2;
      base.watchdog_cycles = parse_u64_arg(argv[0], arg, v, ok);
    } else if (arg == "--rollback") {
      runner.rollback = true;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--cwg") {
      runner.with_cwg = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << argv[0] << ": unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!ok) return 2;
  if (grid.empty()) return usage(argv[0]);
  if (out_format != "jsonl" && out_format != "csv") {
    std::cerr << argv[0] << ": unknown --out format " << out_format << "\n";
    return 2;
  }

  obs::MetricsRegistry metrics;
  if (!metrics_path.empty()) runner.metrics = &metrics;
  obs::Profiler profiler;
  if (!profile_path.empty()) runner.profiler = &profiler;
  if (progress) {
    runner.progress = [](std::size_t done, std::size_t total) {
      std::cerr << "\r" << done << "/" << total << std::flush;
      if (done == total) std::cerr << "\n";
    };
  }

  exp::SweepOutcome outcome;
  try {
    exp::SweepSpec spec = exp::parse_grid(grid);
    if (!fault_plan.empty()) spec.fault_plans = {fault_plan};
    if (!reconfig_plan.empty()) spec.reconfig_plans = {reconfig_plan};
    spec.base = base;
    outcome = exp::run_sweep(spec, runner);
  } catch (const std::invalid_argument& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 2;
  }

  exp::SweepIoOptions io;
  io.timings = !profile_path.empty();
  if (output_path.empty()) {
    if (out_format == "jsonl") {
      exp::write_jsonl(std::cout, outcome, io);
    } else {
      exp::write_csv(std::cout, outcome, io);
    }
  } else {
    std::ofstream file(output_path, std::ios::binary);
    if (!file) {
      std::cerr << argv[0] << ": cannot open " << output_path << "\n";
      return 2;
    }
    if (out_format == "jsonl") {
      exp::write_jsonl(file, outcome, io);
    } else {
      exp::write_csv(file, outcome, io);
    }
  }

  if (!postmortem_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(postmortem_dir, ec);
    if (ec) {
      std::cerr << argv[0] << ": cannot create " << postmortem_dir << ": "
                << ec.message() << "\n";
      return 2;
    }
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<XrefContext>> xrefs;
    std::size_t written = 0;
    for (const exp::SweepResult& r : outcome.results) {
      for (std::size_t n = 0; n < r.postmortems.size(); ++n) {
        const XrefContext& ctx =
            xref_context(xrefs, r.point.topology, r.point.routing);
        obs::PostmortemReport report =
            obs::cross_reference(*ctx.states, ctx.search, r.postmortems[n],
                                 r.point.topology, r.point.routing);
        if (r.point.reconfig_plan != "none" && !r.point.reconfig_plan.empty()) {
          // Transition provenance: classify every lifted edge against the
          // pure pre-switch (base) and post-switch (steady-state) CDGs and
          // flag cycles only the mid-switch union contains.  Deadlocks are
          // rare enough that rebuilding the two graphs per postmortem beats
          // carrying another cache.
          const reconfig::CompiledTransitionPlan plan = reconfig::compile(
              reconfig::parse_transition_plan(r.point.reconfig_plan),
              ctx.topo, r.point.routing);
          const auto steady =
              reconfig::make_union_routing(ctx.topo, plan.steady_state());
          obs::classify_transition_origins(
              report, cdg::build_cdg(*ctx.states),
              cdg::build_cdg(ctx.topo, *steady));
        }
        const std::filesystem::path path =
            std::filesystem::path(postmortem_dir) /
            ("postmortem_" + std::to_string(r.point.index) + "_" +
             std::to_string(n) + ".json");
        std::ofstream file(path, std::ios::binary);
        if (!file) {
          std::cerr << argv[0] << ": cannot open " << path.string() << "\n";
          return 2;
        }
        obs::write_postmortem_json(file, ctx.topo, report);
        ++written;
      }
    }
    if (summary) {
      std::cerr << written << " postmortem(s) written to " << postmortem_dir
                << "\n";
    }
  }

  std::size_t audit_contradictions = 0;
  if (!certify_dir.empty()) {
    bool io_ok = true;
    audit_contradictions =
        write_certificates(argv[0], certify_dir, outcome, summary, io_ok);
    if (!io_ok) return 2;
  }

  if (!profile_path.empty()) {
    std::ofstream file(profile_path, std::ios::binary);
    if (!file) {
      std::cerr << argv[0] << ": cannot open " << profile_path << "\n";
      return 2;
    }
    profiler.write_json(file);
    file << "\n";
  }

  if (!metrics_path.empty()) {
    std::ofstream file(metrics_path, std::ios::binary);
    if (!file) {
      std::cerr << argv[0] << ": cannot open " << metrics_path << "\n";
      return 2;
    }
    metrics.write_json(file);
    file << "\n";
  }

  if (summary) {
    std::cerr << outcome.aggregate.points << " points ("
              << outcome.cache_misses << " analysed pairs, "
              << outcome.skipped.size() << " skipped combos) in "
              << outcome.wall_ms << " ms; " << outcome.aggregate.deadlocks
              << " deadlocks (" << outcome.aggregate.certified_deadlocks
              << " on certified configs)";
    if (outcome.aggregate.packets_aborted > 0 ||
        outcome.aggregate.packets_dropped > 0) {
      std::cerr << "; recovery: " << outcome.aggregate.packets_aborted
                << " aborts, " << outcome.aggregate.recovered_packets
                << " recovered, " << outcome.aggregate.packets_dropped
                << " dropped";
    }
    if (outcome.aggregate.reconfig_epochs > 0) {
      std::cerr << "; reconfig: " << outcome.aggregate.reconfig_epochs
                << " epochs, " << outcome.aggregate.dests_switched
                << " destination cutovers";
    }
    if (outcome.aggregate.rollbacks > 0 ||
        outcome.aggregate.drain_switches > 0) {
      std::cerr << "; self-heal: " << outcome.aggregate.rollbacks
                << " rollbacks (" << outcome.aggregate.rollback_dests
                << " dests), " << outcome.aggregate.drain_switches
                << " drain-switches";
    }
    std::cerr << "\n";
  }
  for (const std::string& skip : outcome.skipped) {
    std::cerr << argv[0] << ": note: skipped inapplicable " << skip << "\n";
  }
  return outcome.aggregate.certified_deadlocks == 0 && audit_contradictions == 0
             ? 0
             : 1;
}
