#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--counter NAME]
       [--tolerance FRACTION]

Fails (exit 1) if any benchmark present in both files regressed by more
than --tolerance (default 0.20, i.e. 20%) on --counter (default
flits_per_sec).  Benchmarks missing from either side are reported but do
not fail the run — grids may grow between PRs.  Stdlib only; CI-friendly.
"""

import argparse
import json
import sys


def load_counters(path, counter):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name")
        if name is None or row.get("run_type") == "aggregate":
            continue
        value = row.get(counter)
        if isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--counter", default="flits_per_sec")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    base = load_counters(args.baseline, args.counter)
    cur = load_counters(args.current, args.counter)
    if not base:
        print(f"error: no '{args.counter}' counters in {args.baseline}")
        return 1

    failed = []
    for name in sorted(base):
        if name not in cur:
            print(f"  MISSING  {name} (in baseline only)")
            continue
        b, c = base[name], cur[name]
        ratio = c / b if b else float("inf")
        verdict = "ok"
        if ratio < 1.0 - args.tolerance:
            verdict = "REGRESSED"
            failed.append(name)
        print(f"  {verdict:9s} {name}: {b:.3e} -> {c:.3e} ({ratio:.2f}x)")
    for name in sorted(set(cur) - set(base)):
        print(f"  NEW      {name}: {cur[name]:.3e}")

    if failed:
        print(f"{len(failed)} benchmark(s) regressed more than "
              f"{args.tolerance:.0%} on {args.counter}")
        return 1
    print(f"all shared benchmarks within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
